package graph

import (
	"fmt"
	"sync"
	"time"

	"dnnperf/internal/telemetry"
	"dnnperf/internal/tensor"
)

// ExecState holds the per-execution tensors of one forward/backward pass:
// node output values, accumulated output gradients, and op-private saved
// state (pooling argmax, batch-norm statistics).
type ExecState struct {
	Intra *tensor.Pool

	vals  []*tensor.Tensor
	saved []any

	grads   []*tensor.Tensor
	gradMu  []sync.Mutex
	pending []int

	// Arena recycling (set when the executor has UseArena enabled).
	exec     *Executor
	arena    *tensor.Arena
	seedGrad *tensor.Tensor // caller-owned upstream gradient, never recycled

	// seq marks single-inter-op execution: node dispatch is serialized, so
	// per-node scratch (the gather buffer, the active set) can be reused
	// instead of reallocated.
	seq       bool
	gatherBuf []*tensor.Tensor
	active    []bool
	markStack []*Node
	retBuf    []*tensor.Tensor
	skip      map[*tensor.Tensor]bool // Release scratch, cleared after use
}

func (st *ExecState) save(id int, v any) { st.saved[id] = v }
func (st *ExecState) load(id int) any    { return st.saved[id] }

// Value returns node n's output tensor from this execution.
//
// With arena recycling enabled, op values are reclaimed eagerly during
// Backward (a node's output is dead once its own backward has run), so
// values must be read between Forward and Backward.
func (st *ExecState) Value(n *Node) *tensor.Tensor { return st.vals[n.ID] }

// Grad returns the accumulated output gradient of node n (nil if none).
func (st *ExecState) Grad(n *Node) *tensor.Tensor { return st.grads[n.ID] }

// Release returns every remaining execution-owned tensor — op outputs,
// accumulated gradients, batch-norm and LRN saved state — to the
// executor's arena and hands the state struct itself back for reuse, making
// subsequent steps allocation-free. It is a no-op without UseArena. The
// state and any tensor it handed out must not be used afterwards; feeds,
// variable values/gradients and the caller's upstream gradient are left
// untouched.
func (st *ExecState) Release() {
	if st.arena == nil || st.exec == nil {
		return
	}
	// Identity-style ops (dropout with rate 0) return their input tensor as
	// their value, so the same tensor can sit in several val slots — and a
	// feed or variable value must never reach the arena. Track what is
	// caller-owned or already returned and release each buffer exactly once.
	// The map is a reused ExecState field: clearing keeps its buckets, so
	// steady-state Release calls do not allocate.
	if st.skip == nil {
		st.skip = make(map[*tensor.Tensor]bool)
	}
	skip := st.skip
	for _, node := range st.exec.G.Nodes {
		if node.Kind != KindOp {
			if v := st.vals[node.ID]; v != nil {
				skip[v] = true
			}
		}
	}
	for _, node := range st.exec.G.Nodes {
		id := node.ID
		if v := st.vals[id]; v != nil && node.Kind == KindOp && !skip[v] {
			st.arena.Put(v)
			skip[v] = true
		}
		st.vals[id] = nil
		if g := st.grads[id]; g != nil && g != st.seedGrad {
			st.arena.Put(g)
		}
		st.grads[id] = nil
		switch s := st.saved[id].(type) {
		case *tensor.Tensor:
			st.arena.Put(s)
		case *tensor.BatchNormState:
			st.arena.PutBNState(s)
		}
		st.saved[id] = nil
		st.pending[id] = 0
	}
	st.seedGrad = nil
	clear(st.skip)
	st.exec.reclaim(st)
}

// alloc returns a zeroed execution-owned tensor: arena-drawn under UseArena,
// freshly allocated otherwise. Ops use it for outputs they build by hand.
func (st *ExecState) alloc(shape ...int) *tensor.Tensor {
	if st.arena != nil {
		return st.arena.Get(shape...)
	}
	return tensor.New(shape...)
}

// outSlice returns an n-entry gradient slice for an Op.Backward result. The
// sequential executor consumes each result inside finishNode before the next
// backward runs, so one buffer per ExecState serves every op; parallel
// execution gets a fresh slice (several backwards are in flight at once).
func (st *ExecState) outSlice(n int) []*tensor.Tensor {
	if st.seq {
		if cap(st.retBuf) < n {
			st.retBuf = make([]*tensor.Tensor, n)
		}
		return st.retBuf[:n]
	}
	return make([]*tensor.Tensor, n)
}

// out1, out2 and out3 wrap outSlice for the common gradient arities. Ops use
// these instead of slice literals so steady-state backward passes stay
// allocation-free.
func (st *ExecState) out1(a *tensor.Tensor) []*tensor.Tensor {
	s := st.outSlice(1)
	s[0] = a
	return s
}

func (st *ExecState) out2(a, b *tensor.Tensor) []*tensor.Tensor {
	s := st.outSlice(2)
	s[0], s[1] = a, b
	return s
}

func (st *ExecState) out3(a, b, c *tensor.Tensor) []*tensor.Tensor {
	s := st.outSlice(3)
	s[0], s[1], s[2] = a, b, c
	return s
}

// Executor runs a graph with TensorFlow-style threading: Intra is the
// intra-op worker pool shared by all kernels, and InterOp is the number of
// op-level workers that may execute independent nodes concurrently.
type Executor struct {
	G       *Graph
	Intra   *tensor.Pool
	InterOp int
	// GradHook, if set, is invoked as soon as a variable's gradient for this
	// backward pass is fully accumulated — the "gradient readiness" event
	// that Horovod's background engine consumes.
	GradHook func(v *Node)
	// Prof, if set, accumulates per-op-kind execution times.
	Prof *Profile
	// Tracer, if set, records every op execution as a span (fwd:<kind> /
	// bwd:<kind>) on the worker's lane, for Chrome-trace timelines. Nil
	// costs nothing on the hot path.
	Tracer *telemetry.Tracer

	// Arena recycling (UseArena): kernel outputs come from the arena, dead
	// intermediates go back during Backward, and spent ExecStates are reused.
	arena  *tensor.Arena
	freeMu sync.Mutex
	free   []*ExecState
}

// UseArena attaches a recycling arena to the executor. Kernels launched
// through it then draw their outputs and scratch from the arena, Backward
// returns each intermediate the moment its last consumer has run, and
// ExecState.Release recycles whatever remains — so steady-state training
// steps allocate (almost) nothing. Call it once, before the first Forward.
func (e *Executor) UseArena(a *tensor.Arena) {
	e.arena = a
	e.Intra = e.Intra.WithArena(a)
}

// Arena returns the arena attached with UseArena, or nil.
func (e *Executor) Arena() *tensor.Arena { return e.arena }

// KernelPool returns the intra-op pool callers should use for kernels whose
// results interact with this executor (e.g. the loss gradient fed to
// Backward): it carries the executor's arena when UseArena is active.
func (e *Executor) KernelPool() *tensor.Pool { return e.Intra }

// newState returns a cleared ExecState, reusing one recycled by Release
// when possible.
func (e *Executor) newState() *ExecState {
	if e.arena != nil {
		e.freeMu.Lock()
		if k := len(e.free); k > 0 {
			st := e.free[k-1]
			e.free = e.free[:k-1]
			e.freeMu.Unlock()
			return st
		}
		e.freeMu.Unlock()
	}
	n := len(e.G.Nodes)
	return &ExecState{
		Intra:   e.Intra,
		vals:    make([]*tensor.Tensor, n),
		saved:   make([]any, n),
		grads:   make([]*tensor.Tensor, n),
		gradMu:  make([]sync.Mutex, n),
		pending: make([]int, n),
		exec:    e,
		arena:   e.arena,
		seq:     e.InterOp == 1,
	}
}

func (e *Executor) reclaim(st *ExecState) {
	e.freeMu.Lock()
	e.free = append(e.free, st)
	e.freeMu.Unlock()
}

// runFwd executes one op node's forward on worker lane tid, timing it when
// profiling or tracing.
func (e *Executor) runFwd(st *ExecState, node *Node, tid int) *tensor.Tensor {
	if e.Prof == nil && e.Tracer == nil {
		return node.Op.Forward(st, node, gatherVals(st, node))
	}
	var sp telemetry.Span
	if e.Tracer != nil {
		sp = e.Tracer.Begin("fwd:"+node.Op.Kind(), "compute", tid)
	}
	t0 := time.Now()
	out := node.Op.Forward(st, node, gatherVals(st, node))
	if e.Prof != nil {
		e.Prof.add(node.Op.Kind(), true, time.Since(t0))
	}
	sp.End()
	return out
}

// NewExecutor returns an executor over g using the given intra-op pool and
// inter-op width (values < 1 are treated as 1).
func NewExecutor(g *Graph, intra *tensor.Pool, interOp int) *Executor {
	if interOp < 1 {
		interOp = 1
	}
	if intra == nil {
		intra = tensor.Serial
	}
	return &Executor{G: g, Intra: intra, InterOp: interOp}
}

// Forward executes the graph given placeholder feeds and returns the
// execution state for value inspection and the backward pass.
func (e *Executor) Forward(feeds map[*Node]*tensor.Tensor) (*ExecState, error) {
	st := e.newState()
	for _, node := range e.G.Nodes {
		switch node.Kind {
		case KindInput:
			t, ok := feeds[node]
			if !ok {
				return nil, fmt.Errorf("graph: missing feed for input %q", node.Name)
			}
			if !tensor.ShapeEq(t.Shape(), node.shape) {
				return nil, fmt.Errorf("graph: feed for %q has shape %v, want %v", node.Name, t.Shape(), node.shape)
			}
			st.vals[node.ID] = t
		case KindVariable:
			node.Materialize()
			st.vals[node.ID] = node.Value
		}
	}
	if e.InterOp == 1 {
		for _, node := range e.G.Nodes {
			if node.Kind != KindOp {
				continue
			}
			st.vals[node.ID] = e.runFwd(st, node, 0)
		}
		return st, nil
	}
	e.forwardParallel(st)
	return st, nil
}

func gatherVals(st *ExecState, node *Node) []*tensor.Tensor {
	var in []*tensor.Tensor
	if st.seq {
		// One node executes at a time and no op retains its input slice
		// beyond the call, so a single buffer serves the whole pass.
		in = st.gatherBuf[:0]
	}
	for _, dep := range node.Inputs {
		in = append(in, st.vals[dep.ID])
	}
	if st.seq {
		st.gatherBuf = in
	}
	return in
}

// forwardParallel executes op nodes with an inter-op worker pool: a node is
// dispatched once all of its inputs have values.
func (e *Executor) forwardParallel(st *ExecState) {
	type counter struct{ remaining int }
	counts := make([]counter, len(e.G.Nodes))
	consumers := make([][]*Node, len(e.G.Nodes))
	var total int
	for _, node := range e.G.Nodes {
		if node.Kind != KindOp {
			continue
		}
		total++
		deps := 0
		for _, in := range node.Inputs {
			if in.Kind == KindOp {
				deps++
				consumers[in.ID] = append(consumers[in.ID], node)
			}
		}
		counts[node.ID].remaining = deps
	}
	ready := make(chan *Node, total+1)
	for _, node := range e.G.Nodes {
		if node.Kind == KindOp && counts[node.ID].remaining == 0 {
			ready <- node
		}
	}
	var mu sync.Mutex
	var done int
	var wg sync.WaitGroup
	wg.Add(e.InterOp)
	for w := 0; w < e.InterOp; w++ {
		go func(tid int) {
			defer wg.Done()
			for node := range ready {
				st.vals[node.ID] = e.runFwd(st, node, tid)
				mu.Lock()
				for _, c := range consumers[node.ID] {
					counts[c.ID].remaining--
					if counts[c.ID].remaining == 0 {
						ready <- c
					}
				}
				done++
				if done == total {
					close(ready)
				}
				mu.Unlock()
			}
		}(w)
	}
	if total == 0 {
		close(ready)
	}
	wg.Wait()
}

// Backward runs reverse-mode differentiation from output with upstream
// gradient dy, accumulating into each variable's Grad buffer (add, not
// overwrite, so gradient accumulation across micro-batches works).
// Variables receive their GradHook callback the moment their gradient for
// this pass is complete, in reverse-topological completion order — the
// readiness stream that drives Horovod overlap.
func (e *Executor) Backward(st *ExecState, output *Node, dy *tensor.Tensor) error {
	if st.vals[output.ID] == nil {
		return fmt.Errorf("graph: Backward before Forward for node %q", output.Name)
	}
	if !tensor.ShapeEq(dy.Shape(), output.shape) {
		return fmt.Errorf("graph: upstream gradient shape %v, want %v", dy.Shape(), output.shape)
	}
	// Restrict to the ancestor set of output. The active set and the DFS
	// stack live on the state so repeated steps don't reallocate them.
	if st.active == nil {
		st.active = make([]bool, len(e.G.Nodes))
	}
	active := st.active
	for i := range active {
		active[i] = false
	}
	stack := append(st.markStack[:0], output)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if active[n.ID] {
			continue
		}
		active[n.ID] = true
		stack = append(stack, n.Inputs...)
	}
	st.markStack = stack

	// pending[n] = number of active consumers that still owe a gradient
	// contribution to n.
	for i := range st.pending {
		st.pending[i] = 0
		st.grads[i] = nil
	}
	for _, node := range e.G.Nodes {
		if node.Kind != KindOp || !active[node.ID] {
			continue
		}
		for _, in := range node.Inputs {
			st.pending[in.ID]++
		}
	}
	st.grads[output.ID] = dy
	st.seedGrad = dy // caller-owned: the arena must never reclaim it

	if e.InterOp == 1 {
		// Sequential: reverse topological order guarantees every node's
		// gradient is complete before its backward runs.
		for i := len(e.G.Nodes) - 1; i >= 0; i-- {
			node := e.G.Nodes[i]
			if !active[node.ID] {
				continue
			}
			e.finishNode(st, node, 0)
		}
		return nil
	}
	return e.backwardParallel(st, active, output)
}

// finishNode consumes node's completed output gradient: ops propagate to
// inputs, variables fold into Grad and fire the hook.
//
// Under UseArena it also performs last-use reclamation. By the time a node
// is finished, every consumer of its output has already run its backward
// (reverse-topological order sequentially; the pending counter in the
// parallel scheduler), so the node's value, accumulated gradient and saved
// state are dead and can be returned to the arena immediately — peak memory
// tracks the live frontier of the backward sweep instead of the whole graph.
func (e *Executor) finishNode(st *ExecState, node *Node, tid int) {
	g := st.grads[node.ID]
	switch node.Kind {
	case KindVariable:
		if g != nil {
			tensor.AXPY(st.Intra, node.Grad, 1, g)
			if st.arena != nil && g != st.seedGrad {
				st.arena.Put(g)
				st.grads[node.ID] = nil
			}
			if e.GradHook != nil {
				e.GradHook(node)
			}
		}
	case KindOp:
		if g == nil {
			return
		}
		var sp telemetry.Span
		if e.Tracer != nil {
			sp = e.Tracer.Begin("bwd:"+node.Op.Kind(), "compute", tid)
		}
		var t0 time.Time
		if e.Prof != nil {
			t0 = time.Now()
		}
		inGrads := node.Op.Backward(st, node, gatherVals(st, node), st.vals[node.ID], g)
		if e.Prof != nil {
			e.Prof.add(node.Op.Kind(), false, time.Since(t0))
		}
		sp.End()
		for i, ig := range inGrads {
			if ig == nil {
				continue
			}
			dep := node.Inputs[i]
			st.gradMu[dep.ID].Lock()
			switch {
			case st.grads[dep.ID] != nil:
				tensor.AXPY(tensor.Serial, st.grads[dep.ID], 1, ig)
				// A freshly produced contribution is dead once folded in;
				// ig == g means the op passed its upstream gradient through
				// (Add, BiasAdd, rate-0 Dropout), which is released when the
				// producing node itself is finished.
				if st.arena != nil && ig != g {
					st.arena.Put(ig)
				}
			case st.arena != nil && ig != g:
				st.grads[dep.ID] = ig // fresh tensor: adopt, no copy
			case st.arena != nil:
				c := st.arena.Get(ig.Shape()...) // pass-through dy: copy it
				c.CopyFrom(ig)
				st.grads[dep.ID] = c
			default:
				st.grads[dep.ID] = ig.Clone()
			}
			st.gradMu[dep.ID].Unlock()
		}
		if st.arena != nil {
			if v := st.vals[node.ID]; v != nil {
				aliased := false // identity ops return their input as value
				for _, in := range node.Inputs {
					if st.vals[in.ID] == v {
						aliased = true
						break
					}
				}
				if !aliased {
					st.arena.Put(v)
				}
				st.vals[node.ID] = nil
			}
			if g != st.seedGrad {
				st.arena.Put(g)
			}
			st.grads[node.ID] = nil
			switch s := st.saved[node.ID].(type) {
			case *tensor.Tensor:
				st.arena.Put(s)
			case *tensor.BatchNormState:
				st.arena.PutBNState(s)
			}
			st.saved[node.ID] = nil
		}
	}
}

func (e *Executor) backwardParallel(st *ExecState, active []bool, output *Node) error {
	// A node may run its backward once all active consumers have delivered
	// their contributions (pending == 0).
	var mu sync.Mutex
	total := 0
	for _, node := range e.G.Nodes {
		if active[node.ID] {
			total++
		}
	}
	ready := make(chan *Node, total+1)
	remaining := make([]int, len(e.G.Nodes))
	copy(remaining, st.pending)
	if remaining[output.ID] != 0 {
		// output feeding other active nodes cannot happen: active set is
		// ancestors of output, and the graph is acyclic.
		return fmt.Errorf("graph: output node %q has active consumers", output.Name)
	}
	ready <- output
	done := 0
	var wg sync.WaitGroup
	wg.Add(e.InterOp)
	for w := 0; w < e.InterOp; w++ {
		go func(tid int) {
			defer wg.Done()
			for node := range ready {
				e.finishNode(st, node, tid)
				mu.Lock()
				for _, in := range node.Inputs {
					remaining[in.ID]--
					if remaining[in.ID] == 0 {
						ready <- in
					}
				}
				done++
				if done == total {
					close(ready)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	return nil
}
