package graph

import (
	"strings"
	"testing"

	"dnnperf/internal/tensor"
)

func TestWriteDOT(t *testing.T) {
	rng := tensor.NewRNG(1)
	g, _, _ := buildBranchy(rng, 1)
	var sb strings.Builder
	if err := g.WriteDOT(&sb, "diamond"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`digraph "diamond"`, "shape=diamond", "shape=ellipse", "conv2d", "->"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
	// One node line per graph node and one edge line per input edge.
	nodes := strings.Count(out, "[shape=")
	if nodes != len(g.Nodes) {
		t.Fatalf("%d node declarations for %d nodes", nodes, len(g.Nodes))
	}
	edges := 0
	for _, n := range g.Nodes {
		edges += len(n.Inputs)
	}
	if got := strings.Count(out, " -> "); got != edges {
		t.Fatalf("%d edges rendered, want %d", got, edges)
	}
	// Default name.
	var sb2 strings.Builder
	if err := g.WriteDOT(&sb2, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb2.String(), `digraph "graph"`) {
		t.Fatal("default name missing")
	}
}
