package graph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format for inspection:
// op nodes as boxes (labeled kind and output shape), variables as ellipses,
// inputs as diamonds. Useful for eyeballing model structure and the cut
// points model parallelism uses.
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	if name == "" {
		name = "graph"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=TB;\n  node [fontsize=10];\n")
	for _, n := range g.Nodes {
		label := n.Name
		shape := "box"
		switch n.Kind {
		case KindInput:
			shape = "diamond"
			label = fmt.Sprintf("%s\\n%v", n.Name, n.Shape())
		case KindVariable:
			shape = "ellipse"
			label = fmt.Sprintf("%s\\n%v", n.Name, n.Shape())
		case KindOp:
			label = fmt.Sprintf("%s\\n%s %v", n.Name, n.Op.Kind(), n.Shape())
		}
		fmt.Fprintf(&b, "  n%d [shape=%s, label=\"%s\"];\n", n.ID, shape, label)
	}
	for _, n := range g.Nodes {
		for _, dep := range n.Inputs {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", dep.ID, n.ID)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
