package graph

import (
	"fmt"

	"dnnperf/internal/tensor"
)

// Op is a differentiable operation. Implementations are stateless across
// executions; anything the backward pass needs is stashed in the ExecState.
type Op interface {
	// Kind returns a short operation class name ("conv2d", "relu", ...).
	Kind() string
	// InferShape computes the output shape from input shapes, panicking on
	// invalid combinations (build-time error, like TF graph construction).
	InferShape(in [][]int) []int
	// Forward computes the op's output.
	Forward(st *ExecState, n *Node, in []*tensor.Tensor) *tensor.Tensor
	// Backward computes per-input gradients given the upstream gradient dy.
	// A nil entry means "no gradient flows to this input".
	Backward(st *ExecState, n *Node, in []*tensor.Tensor, out, dy *tensor.Tensor) []*tensor.Tensor
	// FwdFLOPs estimates the forward floating-point work for these shapes.
	FwdFLOPs(in [][]int, out []int) int64
	// BwdFLOPs estimates the backward floating-point work for these shapes.
	BwdFLOPs(in [][]int, out []int) int64
}

func elems(shape []int) int64 { return int64(tensor.NumElems(shape)) }

// ---------------------------------------------------------------- Conv2D

// Conv2DOp convolves input 0 (NCHW) with kernel input 1 ([F,C,KH,KW]).
type Conv2DOp struct{ Spec tensor.ConvSpec }

// Kind implements Op.
func (o *Conv2DOp) Kind() string { return "conv2d" }

// InferShape implements Op.
func (o *Conv2DOp) InferShape(in [][]int) []int {
	x, k := in[0], in[1]
	if len(x) != 4 || len(k) != 4 {
		panic(fmt.Sprintf("conv2d: need 4-D input/kernel, got %v %v", x, k))
	}
	if x[1] != k[1] {
		panic(fmt.Sprintf("conv2d: channel mismatch input %v kernel %v", x, k))
	}
	oh, ow := o.Spec.OutSize(x[2], x[3])
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("conv2d: non-positive output for input %v spec %+v", x, o.Spec))
	}
	return []int{x[0], k[0], oh, ow}
}

// Forward implements Op.
func (o *Conv2DOp) Forward(st *ExecState, _ *Node, in []*tensor.Tensor) *tensor.Tensor {
	return tensor.Conv2D(st.Intra, in[0], in[1], o.Spec)
}

// Backward implements Op.
func (o *Conv2DOp) Backward(st *ExecState, _ *Node, in []*tensor.Tensor, _, dy *tensor.Tensor) []*tensor.Tensor {
	dx, dk := tensor.Conv2DBackward(st.Intra, in[0], in[1], dy, o.Spec)
	return st.out2(dx, dk)
}

// FwdFLOPs implements Op.
func (o *Conv2DOp) FwdFLOPs(in [][]int, out []int) int64 {
	x, k := in[0], in[1]
	return tensor.ConvFLOPs(x[0], x[1], out[1], out[2], out[3], k[2], k[3])
}

// BwdFLOPs implements Op: dX plus dW, each roughly the forward cost.
func (o *Conv2DOp) BwdFLOPs(in [][]int, out []int) int64 {
	return 2 * o.FwdFLOPs(in, out)
}

// ---------------------------------------------------------------- ReLU

// ReLUOp applies max(x, 0).
type ReLUOp struct{}

// Kind implements Op.
func (ReLUOp) Kind() string { return "relu" }

// InferShape implements Op.
func (ReLUOp) InferShape(in [][]int) []int { return in[0] }

// Forward implements Op.
func (ReLUOp) Forward(st *ExecState, _ *Node, in []*tensor.Tensor) *tensor.Tensor {
	return tensor.ReLU(st.Intra, in[0])
}

// Backward implements Op.
func (ReLUOp) Backward(st *ExecState, _ *Node, in []*tensor.Tensor, _, dy *tensor.Tensor) []*tensor.Tensor {
	return st.out1(tensor.ReLUGrad(st.Intra, in[0], dy))
}

// FwdFLOPs implements Op.
func (ReLUOp) FwdFLOPs(in [][]int, _ []int) int64 { return elems(in[0]) }

// BwdFLOPs implements Op.
func (ReLUOp) BwdFLOPs(in [][]int, _ []int) int64 { return elems(in[0]) }

// ---------------------------------------------------------------- Add

// AddOp sums two same-shaped tensors (residual connections).
type AddOp struct{}

// Kind implements Op.
func (AddOp) Kind() string { return "add" }

// InferShape implements Op.
func (AddOp) InferShape(in [][]int) []int {
	if !tensor.ShapeEq(in[0], in[1]) {
		panic(fmt.Sprintf("add: shape mismatch %v vs %v", in[0], in[1]))
	}
	return in[0]
}

// Forward implements Op.
func (AddOp) Forward(st *ExecState, _ *Node, in []*tensor.Tensor) *tensor.Tensor {
	return tensor.Add(st.Intra, in[0], in[1])
}

// Backward implements Op.
func (AddOp) Backward(st *ExecState, _ *Node, _ []*tensor.Tensor, _, dy *tensor.Tensor) []*tensor.Tensor {
	return st.out2(dy, dy)
}

// FwdFLOPs implements Op.
func (AddOp) FwdFLOPs(in [][]int, _ []int) int64 { return elems(in[0]) }

// BwdFLOPs implements Op.
func (AddOp) BwdFLOPs(in [][]int, _ []int) int64 { return 0 }

// ---------------------------------------------------------------- BatchNorm

// BatchNormOp normalizes input 0 per channel with scale input 1 (gamma) and
// shift input 2 (beta), using batch statistics (training mode).
type BatchNormOp struct{ Eps float32 }

// Kind implements Op.
func (o *BatchNormOp) Kind() string { return "batchnorm" }

// InferShape implements Op.
func (o *BatchNormOp) InferShape(in [][]int) []int {
	x := in[0]
	if len(x) != 4 {
		panic("batchnorm: need NCHW input")
	}
	c := x[1]
	if tensor.NumElems(in[1]) != c || tensor.NumElems(in[2]) != c {
		panic(fmt.Sprintf("batchnorm: gamma/beta must have %d elements", c))
	}
	return x
}

// Forward implements Op.
func (o *BatchNormOp) Forward(st *ExecState, n *Node, in []*tensor.Tensor) *tensor.Tensor {
	out, bnst := tensor.BatchNorm2D(st.Intra, in[0], in[1], in[2], o.Eps)
	st.save(n.ID, bnst)
	return out
}

// Backward implements Op.
func (o *BatchNormOp) Backward(st *ExecState, n *Node, in []*tensor.Tensor, _, dy *tensor.Tensor) []*tensor.Tensor {
	bnst := st.load(n.ID).(*tensor.BatchNormState)
	dx, dgamma, dbeta := tensor.BatchNorm2DBackward(st.Intra, in[0], in[1], dy, bnst)
	return st.out3(dx, dgamma, dbeta)
}

// FwdFLOPs implements Op: two statistics passes plus normalization.
func (o *BatchNormOp) FwdFLOPs(in [][]int, _ []int) int64 { return 8 * elems(in[0]) }

// BwdFLOPs implements Op.
func (o *BatchNormOp) BwdFLOPs(in [][]int, _ []int) int64 { return 10 * elems(in[0]) }

// ---------------------------------------------------------------- Pooling

// MaxPoolOp applies max pooling to an NCHW input.
type MaxPoolOp struct{ Spec tensor.PoolSpec }

// Kind implements Op.
func (o *MaxPoolOp) Kind() string { return "maxpool" }

// InferShape implements Op.
func (o *MaxPoolOp) InferShape(in [][]int) []int {
	x := in[0]
	oh, ow := o.Spec.OutSize(x[2], x[3])
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("maxpool: non-positive output for %v", x))
	}
	return []int{x[0], x[1], oh, ow}
}

// Forward implements Op.
func (o *MaxPoolOp) Forward(st *ExecState, n *Node, in []*tensor.Tensor) *tensor.Tensor {
	out, argmax := tensor.MaxPool2D(st.Intra, in[0], o.Spec)
	st.save(n.ID, argmax)
	return out
}

// Backward implements Op.
func (o *MaxPoolOp) Backward(st *ExecState, n *Node, in []*tensor.Tensor, _, dy *tensor.Tensor) []*tensor.Tensor {
	argmax := st.load(n.ID).([]int32)
	return st.out1(tensor.MaxPool2DBackward(st.Intra, in[0].Shape(), dy, argmax, o.Spec))
}

// FwdFLOPs implements Op.
func (o *MaxPoolOp) FwdFLOPs(_ [][]int, out []int) int64 {
	return elems(out) * int64(o.Spec.KH*o.Spec.KW)
}

// BwdFLOPs implements Op.
func (o *MaxPoolOp) BwdFLOPs(_ [][]int, out []int) int64 { return elems(out) }

// AvgPoolOp applies average pooling to an NCHW input.
type AvgPoolOp struct{ Spec tensor.PoolSpec }

// Kind implements Op.
func (o *AvgPoolOp) Kind() string { return "avgpool" }

// InferShape implements Op.
func (o *AvgPoolOp) InferShape(in [][]int) []int {
	x := in[0]
	oh, ow := o.Spec.OutSize(x[2], x[3])
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("avgpool: non-positive output for %v", x))
	}
	return []int{x[0], x[1], oh, ow}
}

// Forward implements Op.
func (o *AvgPoolOp) Forward(st *ExecState, _ *Node, in []*tensor.Tensor) *tensor.Tensor {
	return tensor.AvgPool2D(st.Intra, in[0], o.Spec)
}

// Backward implements Op.
func (o *AvgPoolOp) Backward(st *ExecState, _ *Node, in []*tensor.Tensor, _, dy *tensor.Tensor) []*tensor.Tensor {
	return st.out1(tensor.AvgPool2DBackward(st.Intra, in[0].Shape(), dy, o.Spec))
}

// FwdFLOPs implements Op.
func (o *AvgPoolOp) FwdFLOPs(_ [][]int, out []int) int64 {
	return elems(out) * int64(o.Spec.KH*o.Spec.KW)
}

// BwdFLOPs implements Op.
func (o *AvgPoolOp) BwdFLOPs(_ [][]int, out []int) int64 {
	return elems(out) * int64(o.Spec.KH*o.Spec.KW)
}

// GlobalAvgPoolOp reduces NCHW to [N, C] by spatial averaging.
type GlobalAvgPoolOp struct{}

// Kind implements Op.
func (GlobalAvgPoolOp) Kind() string { return "gap" }

// InferShape implements Op.
func (GlobalAvgPoolOp) InferShape(in [][]int) []int {
	x := in[0]
	if len(x) != 4 {
		panic("gap: need NCHW input")
	}
	return []int{x[0], x[1]}
}

// Forward implements Op.
func (GlobalAvgPoolOp) Forward(st *ExecState, _ *Node, in []*tensor.Tensor) *tensor.Tensor {
	return tensor.GlobalAvgPool(st.Intra, in[0])
}

// Backward implements Op.
func (GlobalAvgPoolOp) Backward(st *ExecState, _ *Node, in []*tensor.Tensor, _, dy *tensor.Tensor) []*tensor.Tensor {
	return st.out1(tensor.GlobalAvgPoolBackward(st.Intra, in[0].Shape(), dy))
}

// FwdFLOPs implements Op.
func (GlobalAvgPoolOp) FwdFLOPs(in [][]int, _ []int) int64 { return elems(in[0]) }

// BwdFLOPs implements Op.
func (GlobalAvgPoolOp) BwdFLOPs(in [][]int, _ []int) int64 { return elems(in[0]) }

// ---------------------------------------------------------------- Concat

// ConcatOp concatenates its inputs along Axis (channel axis 1 for the
// Inception modules).
type ConcatOp struct{ Axis int }

// Kind implements Op.
func (o *ConcatOp) Kind() string { return "concat" }

// InferShape implements Op.
func (o *ConcatOp) InferShape(in [][]int) []int {
	out := append([]int(nil), in[0]...)
	for _, s := range in[1:] {
		if len(s) != len(out) {
			panic("concat: rank mismatch")
		}
		for d := range s {
			if d == o.Axis {
				continue
			}
			if s[d] != out[d] {
				panic(fmt.Sprintf("concat: dim %d mismatch %v vs %v", d, s, out))
			}
		}
		out[o.Axis] += s[o.Axis]
	}
	return out
}

// Forward implements Op.
func (o *ConcatOp) Forward(st *ExecState, _ *Node, in []*tensor.Tensor) *tensor.Tensor {
	return tensor.Concat(st.Intra, o.Axis, in...)
}

// Backward implements Op.
func (o *ConcatOp) Backward(st *ExecState, _ *Node, in []*tensor.Tensor, _, dy *tensor.Tensor) []*tensor.Tensor {
	sizes := make([]int, len(in))
	for i, t := range in {
		sizes[i] = t.Shape()[o.Axis]
	}
	return tensor.SplitGrad(st.Intra, dy, o.Axis, sizes)
}

// FwdFLOPs implements Op: pure data movement; count element copies.
func (o *ConcatOp) FwdFLOPs(_ [][]int, out []int) int64 { return elems(out) }

// BwdFLOPs implements Op.
func (o *ConcatOp) BwdFLOPs(_ [][]int, out []int) int64 { return elems(out) }

// ---------------------------------------------------------------- Dense

// DenseOp computes x @ W + b for x [N, in], W [in, out], b [out].
type DenseOp struct{}

// Kind implements Op.
func (DenseOp) Kind() string { return "dense" }

// InferShape implements Op.
func (DenseOp) InferShape(in [][]int) []int {
	x, w, b := in[0], in[1], in[2]
	if len(x) != 2 || len(w) != 2 {
		panic(fmt.Sprintf("dense: need 2-D x and W, got %v %v", x, w))
	}
	if x[1] != w[0] || tensor.NumElems(b) != w[1] {
		panic(fmt.Sprintf("dense: shape mismatch x %v W %v b %v", x, w, b))
	}
	return []int{x[0], w[1]}
}

// Forward implements Op.
func (DenseOp) Forward(st *ExecState, _ *Node, in []*tensor.Tensor) *tensor.Tensor {
	out := tensor.MatMul(st.Intra, in[0], in[1])
	tensor.AddBiasRows(st.Intra, out, in[2])
	return out
}

// Backward implements Op.
func (DenseOp) Backward(st *ExecState, _ *Node, in []*tensor.Tensor, _, dy *tensor.Tensor) []*tensor.Tensor {
	dx := tensor.MatMulTB(st.Intra, dy, in[1]) // dy [N,out] @ Wᵀ
	dw := tensor.MatMulTA(st.Intra, in[0], dy) // xᵀ @ dy
	db := tensor.SumRows(st.Intra, dy)
	return st.out3(dx, dw, db)
}

// FwdFLOPs implements Op.
func (DenseOp) FwdFLOPs(in [][]int, out []int) int64 {
	return 2 * int64(in[0][0]) * int64(in[0][1]) * int64(out[1])
}

// BwdFLOPs implements Op.
func (DenseOp) BwdFLOPs(in [][]int, out []int) int64 { return 2 * DenseOp{}.FwdFLOPs(in, out) }

// ---------------------------------------------------------------- Flatten

// FlattenOp reshapes [N, ...] to [N, prod(...)].
type FlattenOp struct{}

// Kind implements Op.
func (FlattenOp) Kind() string { return "flatten" }

// InferShape implements Op.
func (FlattenOp) InferShape(in [][]int) []int {
	x := in[0]
	if len(x) < 2 {
		panic("flatten: need at least 2 dims")
	}
	return []int{x[0], tensor.NumElems(x[1:])}
}

// Forward implements Op.
func (FlattenOp) Forward(st *ExecState, _ *Node, in []*tensor.Tensor) *tensor.Tensor {
	x := in[0]
	out := st.alloc(x.Shape()[0], x.Len()/x.Shape()[0])
	copy(out.Data(), x.Data())
	return out
}

// Backward implements Op.
func (FlattenOp) Backward(st *ExecState, _ *Node, in []*tensor.Tensor, _, dy *tensor.Tensor) []*tensor.Tensor {
	dx := st.alloc(in[0].Shape()...)
	copy(dx.Data(), dy.Data())
	return st.out1(dx)
}

// FwdFLOPs implements Op.
func (FlattenOp) FwdFLOPs(in [][]int, _ []int) int64 { return 0 }

// BwdFLOPs implements Op.
func (FlattenOp) BwdFLOPs(in [][]int, _ []int) int64 { return 0 }
