package graph

import (
	"strings"
	"testing"

	"dnnperf/internal/tensor"
)

func TestProfileCollectsOpTimes(t *testing.T) {
	rng := tensor.NewRNG(1)
	g, x, out := buildBranchy(rng, 2)
	ex := NewExecutor(g, tensor.Serial, 1)
	ex.Prof = NewProfile()

	st, err := ex.Forward(map[*Node]*tensor.Tensor{x: rng.Uniform(-1, 1, 2, 2, 8, 8)})
	if err != nil {
		t.Fatal(err)
	}
	g.ZeroGrads()
	if err := ex.Backward(st, out, tensor.Ones(2, 8)); err != nil {
		t.Fatal(err)
	}

	entries := ex.Prof.Entries()
	kinds := map[string]Entry{}
	for _, e := range entries {
		kinds[e.Kind] = e
	}
	for _, k := range []string{"conv2d", "relu", "concat", "gap"} {
		e, ok := kinds[k]
		if !ok {
			t.Fatalf("profile missing kind %q: %v", k, entries)
		}
		if e.Calls < 1 || e.Total() <= 0 {
			t.Fatalf("kind %q: calls=%d total=%v", k, e.Calls, e.Total())
		}
	}
	// conv2d has both forward and backward components.
	if kinds["conv2d"].Forward <= 0 || kinds["conv2d"].Backward <= 0 {
		t.Fatalf("conv2d fwd/bwd times: %+v", kinds["conv2d"])
	}
	if ex.Prof.TotalTime() <= 0 {
		t.Fatal("total time must be positive")
	}
}

func TestProfileRenderAndReset(t *testing.T) {
	p := NewProfile()
	p.add("conv2d", true, 1000)
	p.add("conv2d", false, 2000)
	p.add("relu", true, 100)
	var sb strings.Builder
	p.Render(&sb)
	out := sb.String()
	for _, want := range []string{"conv2d", "relu", "total", "share"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// conv2d must rank first (largest total).
	if e := p.Entries(); e[0].Kind != "conv2d" {
		t.Fatalf("ordering: %v", e)
	}
	p.Reset()
	if len(p.Entries()) != 0 || p.TotalTime() != 0 {
		t.Fatal("reset must clear the profile")
	}
}

func TestForwardRangeMatchesFullForward(t *testing.T) {
	rng := tensor.NewRNG(7)
	g, x, out := buildBranchy(rng, 1)
	in := rng.Uniform(-1, 1, 1, 2, 8, 8)
	ex := NewExecutor(g, tensor.Serial, 1)

	full, err := ex.Forward(map[*Node]*tensor.Tensor{x: in})
	if err != nil {
		t.Fatal(err)
	}
	// Split at the concat node (a cut point in this diamond's tail).
	cuts := g.CutPoints()
	if len(cuts) == 0 {
		t.Fatal("no cut points in diamond tail")
	}
	cut := cuts[len(cuts)-1]
	st1, err := ex.ForwardRange(map[*Node]*tensor.Tensor{x: in}, -1, cut)
	if err != nil {
		t.Fatal(err)
	}
	boundary := g.Nodes[cut]
	st2, err := ex.ForwardRange(map[*Node]*tensor.Tensor{boundary: st1.Value(boundary)}, cut, out.ID)
	if err != nil {
		t.Fatal(err)
	}
	if d := st2.Value(out).MaxAbsDiff(full.Value(out)); d > 1e-6 {
		t.Fatalf("staged forward differs by %g", d)
	}
}

func TestForwardRangeErrors(t *testing.T) {
	rng := tensor.NewRNG(7)
	g, x, out := buildBranchy(rng, 1)
	ex := NewExecutor(g, tensor.Serial, 1)
	if _, err := ex.ForwardRange(nil, 5, 2); err == nil {
		t.Fatal("inverted range must error")
	}
	if _, err := ex.ForwardRange(nil, -1, out.ID); err == nil {
		t.Fatal("missing input preset must error")
	}
	if _, err := ex.ForwardRange(map[*Node]*tensor.Tensor{x: tensor.New(9, 9)}, -1, out.ID); err == nil {
		t.Fatal("wrong preset shape must error")
	}
}

func TestBackwardRangeBoundaryGradient(t *testing.T) {
	rng := tensor.NewRNG(9)
	g, x, out := buildBranchy(rng, 1)
	in := rng.Uniform(-1, 1, 1, 2, 8, 8)
	ex := NewExecutor(g, tensor.Serial, 1)
	dy := rng.Uniform(-1, 1, 1, 8)

	// Full backward reference gradient on the input.
	full, err := ex.Forward(map[*Node]*tensor.Tensor{x: in})
	if err != nil {
		t.Fatal(err)
	}
	g.ZeroGrads()
	if err := ex.Backward(full, out, dy); err != nil {
		t.Fatal(err)
	}
	wantInputGrad := full.Grad(x).Clone()
	var refGrads []*tensor.Tensor
	for _, v := range g.Variables() {
		refGrads = append(refGrads, v.Grad.Clone())
	}

	// Staged: split at the last cut.
	cuts := g.CutPoints()
	cut := cuts[len(cuts)-1]
	boundary := g.Nodes[cut]
	st1, err := ex.ForwardRange(map[*Node]*tensor.Tensor{x: in}, -1, cut)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := ex.ForwardRange(map[*Node]*tensor.Tensor{boundary: st1.Value(boundary)}, cut, out.ID)
	if err != nil {
		t.Fatal(err)
	}
	g.ZeroGrads()
	out2, err := ex.BackwardRange(st2, out, dy, cut)
	if err != nil {
		t.Fatal(err)
	}
	bg, ok := out2[boundary]
	if !ok {
		t.Fatal("stage 2 must emit a boundary gradient")
	}
	out1, err := ex.BackwardRange(st1, boundary, bg, -1)
	if err != nil {
		t.Fatal(err)
	}
	if d := out1[x].MaxAbsDiff(wantInputGrad); d > 1e-5 {
		t.Fatalf("staged input gradient differs by %g", d)
	}
	for i, v := range g.Variables() {
		if d := v.Grad.MaxAbsDiff(refGrads[i]); d > 1e-5 {
			t.Fatalf("staged %s gradient differs by %g", v.Name, d)
		}
	}
}
