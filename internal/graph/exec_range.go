package graph

import (
	"fmt"

	"dnnperf/internal/tensor"
)

// Range execution supports model parallelism (the paper's Section II-B:
// the model is split across processes, with Send/Recv implementing the
// distributed forward and backward passes). A stage executes only the op
// nodes in a contiguous ID range, consuming boundary activations produced
// by the previous stage and emitting its own boundary tensor.
//
// Range execution is sequential (inter-op width 1): pipeline parallelism
// across stages supplies the concurrency.

// ForwardRange executes op nodes with lo < ID <= hi. presets provides the
// values of boundary dependencies (nodes with ID <= lo, including the
// graph's placeholders for the first stage). Variables inside the range
// are materialized on demand.
func (e *Executor) ForwardRange(presets map[*Node]*tensor.Tensor, lo, hi int) (*ExecState, error) {
	if lo < -1 || hi >= len(e.G.Nodes) || lo >= hi {
		return nil, fmt.Errorf("graph: invalid range (%d, %d]", lo, hi)
	}
	st := e.newState()
	for node, v := range presets {
		if v == nil {
			return nil, fmt.Errorf("graph: nil preset for %q", node.Name)
		}
		if !tensor.ShapeEq(v.Shape(), node.shape) {
			return nil, fmt.Errorf("graph: preset for %q has shape %v, want %v", node.Name, v.Shape(), node.shape)
		}
		st.vals[node.ID] = v
	}
	for id := lo + 1; id <= hi; id++ {
		node := e.G.Nodes[id]
		switch node.Kind {
		case KindVariable:
			node.Materialize()
			st.vals[id] = node.Value
		case KindInput:
			if st.vals[id] == nil {
				// Tolerated until something in range consumes it.
				continue
			}
		case KindOp:
			for _, dep := range node.Inputs {
				if st.vals[dep.ID] == nil {
					if dep.Kind == KindVariable {
						dep.Materialize()
						st.vals[dep.ID] = dep.Value
						continue
					}
					return nil, fmt.Errorf("graph: node %q needs %q, which is outside the range and not preset",
						node.Name, dep.Name)
				}
			}
			st.vals[id] = e.runFwd(st, node, 0)
		}
	}
	return st, nil
}

// BackwardRange runs reverse-mode differentiation over op nodes with
// lo < ID <= from.ID, seeding the output gradient dy at node `from`.
// Variable gradients accumulate as usual; the returned map holds the
// gradients that flow out of the range (to boundary nodes with ID <= lo) —
// what a pipeline stage sends back to its predecessor.
func (e *Executor) BackwardRange(st *ExecState, from *Node, dy *tensor.Tensor, lo int) (map[*Node]*tensor.Tensor, error) {
	if st.vals[from.ID] == nil {
		return nil, fmt.Errorf("graph: BackwardRange before ForwardRange for %q", from.Name)
	}
	if !tensor.ShapeEq(dy.Shape(), from.shape) {
		return nil, fmt.Errorf("graph: upstream gradient shape %v, want %v", dy.Shape(), from.shape)
	}
	for i := range st.grads {
		st.grads[i] = nil
	}
	st.grads[from.ID] = dy
	st.seedGrad = dy // caller-owned: the arena must never reclaim it
	for id := from.ID; id > lo; id-- {
		node := e.G.Nodes[id]
		if node.Kind == KindInput {
			continue
		}
		if st.grads[id] == nil && node.Kind == KindOp {
			continue
		}
		e.finishNode(st, node, 0)
	}
	out := make(map[*Node]*tensor.Tensor)
	for id := 0; id <= lo; id++ {
		if g := st.grads[id]; g != nil {
			out[e.G.Nodes[id]] = g
		}
	}
	// Input placeholders inside the range also surface their gradients
	// (stage 0 reports the data gradient this way).
	for id := lo + 1; id <= from.ID; id++ {
		if e.G.Nodes[id].Kind == KindInput {
			if g := st.grads[id]; g != nil {
				out[e.G.Nodes[id]] = g
			}
		}
	}
	return out, nil
}

// CutPoints returns the IDs of op nodes where the graph can be cleanly
// split: every edge crossing the cut originates at the cut node itself, so
// exactly one tensor flows between the resulting stages. Chain-structured
// CNNs (ResNets between blocks, Inceptions between modules) have many.
func (g *Graph) CutPoints() []int {
	n := len(g.Nodes)
	// maxTo[j] = highest consumer ID of node j (j itself if none).
	maxTo := make([]int, n)
	for i := range maxTo {
		maxTo[i] = i
	}
	for _, node := range g.Nodes {
		for _, dep := range node.Inputs {
			if node.ID > maxTo[dep.ID] {
				maxTo[dep.ID] = node.ID
			}
		}
	}
	var cuts []int
	// A cut after node i is valid iff no node j < i has a consumer > i.
	// Track the running maximum of maxTo over j <= i, excluding i itself.
	runningMax := 0
	for i, node := range g.Nodes {
		if i > 0 && maxTo[i-1] > runningMax {
			runningMax = maxTo[i-1]
		}
		if node.Kind != KindOp || i == n-1 {
			continue
		}
		if runningMax <= i {
			cuts = append(cuts, i)
		}
	}
	return cuts
}
