package graph

import (
	"fmt"
	"sync/atomic"

	"dnnperf/internal/tensor"
)

// Ops used by the classic (pre-batch-norm) architectures: per-channel bias,
// AlexNet's local response normalization, and inverted dropout.

// BiasAddOp adds a per-channel bias (input 1, length C) to an NCHW tensor.
type BiasAddOp struct{}

// Kind implements Op.
func (BiasAddOp) Kind() string { return "biasadd" }

// InferShape implements Op.
func (BiasAddOp) InferShape(in [][]int) []int {
	x, b := in[0], in[1]
	if len(x) != 4 || tensor.NumElems(b) != x[1] {
		panic(fmt.Sprintf("biasadd: bias %v does not match input %v", b, x))
	}
	return x
}

// Forward implements Op.
func (BiasAddOp) Forward(st *ExecState, _ *Node, in []*tensor.Tensor) *tensor.Tensor {
	return tensor.BiasAddNCHW(st.Intra, in[0], in[1])
}

// Backward implements Op.
func (BiasAddOp) Backward(st *ExecState, _ *Node, _ []*tensor.Tensor, _, dy *tensor.Tensor) []*tensor.Tensor {
	return st.out2(dy, tensor.BiasAddNCHWGrad(st.Intra, dy))
}

// FwdFLOPs implements Op.
func (BiasAddOp) FwdFLOPs(in [][]int, _ []int) int64 { return elems(in[0]) }

// BwdFLOPs implements Op.
func (BiasAddOp) BwdFLOPs(in [][]int, _ []int) int64 { return elems(in[0]) }

// LRNOp is AlexNet-style cross-channel local response normalization.
type LRNOp struct{ Spec tensor.LRNSpec }

// Kind implements Op.
func (o *LRNOp) Kind() string { return "lrn" }

// InferShape implements Op.
func (o *LRNOp) InferShape(in [][]int) []int {
	if len(in[0]) != 4 {
		panic("lrn: need NCHW input")
	}
	if o.Spec.Size < 1 || o.Spec.Size%2 == 0 {
		panic(fmt.Sprintf("lrn: window size %d must be odd and positive", o.Spec.Size))
	}
	return in[0]
}

// Forward implements Op.
func (o *LRNOp) Forward(st *ExecState, n *Node, in []*tensor.Tensor) *tensor.Tensor {
	out, scale := tensor.LRN(st.Intra, in[0], o.Spec)
	st.save(n.ID, scale)
	return out
}

// Backward implements Op.
func (o *LRNOp) Backward(st *ExecState, n *Node, in []*tensor.Tensor, out, dy *tensor.Tensor) []*tensor.Tensor {
	scale := st.load(n.ID).(*tensor.Tensor)
	return st.out1(tensor.LRNBackward(st.Intra, in[0], out, scale, dy, o.Spec))
}

// FwdFLOPs implements Op: a window pass plus the power per element.
func (o *LRNOp) FwdFLOPs(in [][]int, _ []int) int64 {
	return elems(in[0]) * int64(o.Spec.Size+8)
}

// BwdFLOPs implements Op.
func (o *LRNOp) BwdFLOPs(in [][]int, _ []int) int64 {
	return elems(in[0]) * int64(o.Spec.Size+8)
}

// DropoutOp applies inverted dropout with a fresh deterministic mask per
// execution (the step counter advances the seed so successive steps use
// different masks while distributed replicas stay consistent).
type DropoutOp struct {
	Rate float32
	Seed int64
	step atomic.Int64
}

// Kind implements Op.
func (o *DropoutOp) Kind() string { return "dropout" }

// InferShape implements Op.
func (o *DropoutOp) InferShape(in [][]int) []int {
	if o.Rate < 0 || o.Rate >= 1 {
		panic(fmt.Sprintf("dropout: rate %v out of [0,1)", o.Rate))
	}
	return in[0]
}

// Forward implements Op.
func (o *DropoutOp) Forward(st *ExecState, n *Node, in []*tensor.Tensor) *tensor.Tensor {
	if o.Rate == 0 {
		return in[0]
	}
	step := o.step.Add(1)
	mask := tensor.DropoutMask(o.Rate, o.Seed*1000003+step, in[0].Shape()...)
	st.save(n.ID, mask)
	return tensor.Mul(st.Intra, in[0], mask)
}

// Backward implements Op.
func (o *DropoutOp) Backward(st *ExecState, n *Node, _ []*tensor.Tensor, _, dy *tensor.Tensor) []*tensor.Tensor {
	if o.Rate == 0 {
		return st.out1(dy)
	}
	mask := st.load(n.ID).(*tensor.Tensor)
	return st.out1(tensor.Mul(st.Intra, dy, mask))
}

// FwdFLOPs implements Op.
func (o *DropoutOp) FwdFLOPs(in [][]int, _ []int) int64 { return elems(in[0]) }

// BwdFLOPs implements Op.
func (o *DropoutOp) BwdFLOPs(in [][]int, _ []int) int64 { return elems(in[0]) }
