package graph

import (
	"fmt"
	"strings"
	"testing"

	"dnnperf/internal/telemetry"
	"dnnperf/internal/tensor"
)

// TestProfileAndSpansConcurrentInterOp drives the parallel inter-op executor
// with a registry-backed profile and a tracer attached at the same time.
// Under -race this exercises the lock-free counter adds and the span buffer
// from multiple workers; the assertions check that the exported counters are
// the profile's own accumulators and that every profiled call emitted
// exactly one span.
func TestProfileAndSpansConcurrentInterOp(t *testing.T) {
	rng := tensor.NewRNG(7)
	g, x, out := buildBranchy(rng, 2)
	pool := tensor.NewPool(2)
	defer pool.Close()
	ex := NewExecutor(g, pool, 4) // 4 inter-op workers: branches run concurrently
	reg := telemetry.New()
	ex.Prof = NewProfileOn(reg)
	tr := telemetry.NewTracer()
	ex.Tracer = tr

	const iters = 4
	for i := 0; i < iters; i++ {
		st, err := ex.Forward(map[*Node]*tensor.Tensor{x: rng.Uniform(-1, 1, 2, 2, 8, 8)})
		if err != nil {
			t.Fatal(err)
		}
		g.ZeroGrads()
		if err := ex.Backward(st, out, tensor.Ones(2, 8)); err != nil {
			t.Fatal(err)
		}
	}

	// The registry snapshot must carry the profile's numbers under the
	// labeled graph.op.* names — same handles, same values.
	snap := reg.Snapshot()
	entries := ex.Prof.Entries()
	if len(entries) == 0 {
		t.Fatal("profile collected nothing")
	}
	var totalCalls int64
	for _, e := range entries {
		totalCalls += e.Calls
		name := fmt.Sprintf("graph.op.calls{kind=%s}", e.Kind)
		if got := snap.Counters[name]; got != e.Calls {
			t.Fatalf("%s: snapshot %d, profile %d", name, got, e.Calls)
		}
		fwd := fmt.Sprintf("graph.op.fwd_ns{kind=%s}", e.Kind)
		if got := snap.Counters[fwd]; got != int64(e.Forward) {
			t.Fatalf("%s: snapshot %d, profile %d", fwd, got, int64(e.Forward))
		}
	}

	// Every profiled call has exactly one span, named fwd:<kind>/bwd:<kind>.
	perKind := map[string]int64{}
	var spans int64
	for _, ev := range tr.Events() {
		if strings.HasPrefix(ev.Name, "fwd:") || strings.HasPrefix(ev.Name, "bwd:") {
			spans++
			perKind[strings.TrimPrefix(strings.TrimPrefix(ev.Name, "fwd:"), "bwd:")]++
		}
	}
	if spans != totalCalls {
		t.Fatalf("spans %d != profiled calls %d", spans, totalCalls)
	}
	for _, e := range entries {
		if perKind[e.Kind] != e.Calls {
			t.Fatalf("kind %s: %d spans, %d calls", e.Kind, perKind[e.Kind], e.Calls)
		}
	}
}
