package graph

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"dnnperf/internal/telemetry"
)

// Profile accumulates per-op-kind execution time across forward and
// backward passes — the op-level breakdown performance studies use to
// identify where CPU training time goes (convolutions vs normalization vs
// data movement).
//
// The accumulators are telemetry counters (graph.op.fwd_ns{kind=K},
// graph.op.bwd_ns{kind=K}, graph.op.calls{kind=K}): handles are registered
// once per kind and then updated with lock-free atomic adds, so concurrent
// inter-op workers profile without contending, and NewProfileOn exports the
// same numbers through a shared metrics registry.
type Profile struct {
	reg *telemetry.Registry

	mu    sync.Mutex
	kinds map[string]*kindHandles
}

type kindHandles struct {
	fwd, bwd, calls *telemetry.Counter
}

// NewProfile returns an empty profile on private (unexported) accumulators.
func NewProfile() *Profile { return NewProfileOn(nil) }

// NewProfileOn returns a profile whose accumulators live in reg, so the
// per-op breakdown ships with the job's metrics snapshot. A nil registry
// keeps them private.
func NewProfileOn(reg *telemetry.Registry) *Profile {
	return &Profile{reg: reg, kinds: make(map[string]*kindHandles)}
}

// handles returns kind's counter triple, registering it on first use. A nil
// registry hands out detached counters, which is why the triple must be
// cached here: detached handles are not idempotent per name.
func (p *Profile) handles(kind string) *kindHandles {
	p.mu.Lock()
	defer p.mu.Unlock()
	h := p.kinds[kind]
	if h == nil {
		l := telemetry.L("kind", kind)
		h = &kindHandles{
			fwd:   p.reg.Counter("graph.op.fwd_ns", l),
			bwd:   p.reg.Counter("graph.op.bwd_ns", l),
			calls: p.reg.Counter("graph.op.calls", l),
		}
		p.kinds[kind] = h
	}
	return h
}

func (p *Profile) add(kind string, fwd bool, d time.Duration) {
	h := p.handles(kind)
	if fwd {
		h.fwd.Add(int64(d))
	} else {
		h.bwd.Add(int64(d))
	}
	h.calls.Inc()
}

// Entry is one row of a profile report.
type Entry struct {
	Kind     string
	Forward  time.Duration
	Backward time.Duration
	Calls    int64
}

// Total returns the entry's combined time.
func (e Entry) Total() time.Duration { return e.Forward + e.Backward }

// Entries returns the profile rows sorted by descending total time.
func (p *Profile) Entries() []Entry {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Entry, 0, len(p.kinds))
	for k, h := range p.kinds {
		out = append(out, Entry{
			Kind:     k,
			Forward:  time.Duration(h.fwd.Value()),
			Backward: time.Duration(h.bwd.Value()),
			Calls:    h.calls.Value(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Total() > out[j].Total() })
	return out
}

// TotalTime returns the sum over all kinds.
func (p *Profile) TotalTime() time.Duration {
	var t time.Duration
	for _, e := range p.Entries() {
		t += e.Total()
	}
	return t
}

// Reset clears all accumulated data. Counters in a shared registry are
// zeroed (not unregistered — Registry handles are permanent), and the kind
// cache is dropped so Entries() reports only kinds seen since the reset.
func (p *Profile) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, h := range p.kinds {
		h.fwd.Store(0)
		h.bwd.Store(0)
		h.calls.Store(0)
	}
	p.kinds = make(map[string]*kindHandles)
}

// Render writes an aligned report to w.
func (p *Profile) Render(w io.Writer) {
	entries := p.Entries()
	total := p.TotalTime()
	fmt.Fprintf(w, "%-12s %10s %10s %10s %7s %6s\n", "op", "fwd", "bwd", "total", "calls", "share")
	for _, e := range entries {
		share := 0.0
		if total > 0 {
			share = 100 * float64(e.Total()) / float64(total)
		}
		fmt.Fprintf(w, "%-12s %10s %10s %10s %7d %5.1f%%\n",
			e.Kind, e.Forward.Round(time.Microsecond), e.Backward.Round(time.Microsecond),
			e.Total().Round(time.Microsecond), e.Calls, share)
	}
	fmt.Fprintf(w, "%-12s %32s\n", "total", total.Round(time.Microsecond))
}
