package graph

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Profile accumulates per-op-kind execution time across forward and
// backward passes — the op-level breakdown performance studies use to
// identify where CPU training time goes (convolutions vs normalization vs
// data movement).
type Profile struct {
	mu    sync.Mutex
	fwd   map[string]time.Duration
	bwd   map[string]time.Duration
	calls map[string]int64
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{
		fwd:   make(map[string]time.Duration),
		bwd:   make(map[string]time.Duration),
		calls: make(map[string]int64),
	}
}

func (p *Profile) add(kind string, fwd bool, d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if fwd {
		p.fwd[kind] += d
	} else {
		p.bwd[kind] += d
	}
	p.calls[kind]++
}

// Entry is one row of a profile report.
type Entry struct {
	Kind     string
	Forward  time.Duration
	Backward time.Duration
	Calls    int64
}

// Total returns the entry's combined time.
func (e Entry) Total() time.Duration { return e.Forward + e.Backward }

// Entries returns the profile rows sorted by descending total time.
func (p *Profile) Entries() []Entry {
	p.mu.Lock()
	defer p.mu.Unlock()
	kinds := map[string]bool{}
	for k := range p.fwd {
		kinds[k] = true
	}
	for k := range p.bwd {
		kinds[k] = true
	}
	out := make([]Entry, 0, len(kinds))
	for k := range kinds {
		out = append(out, Entry{Kind: k, Forward: p.fwd[k], Backward: p.bwd[k], Calls: p.calls[k]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Total() > out[j].Total() })
	return out
}

// TotalTime returns the sum over all kinds.
func (p *Profile) TotalTime() time.Duration {
	var t time.Duration
	for _, e := range p.Entries() {
		t += e.Total()
	}
	return t
}

// Reset clears all accumulated data.
func (p *Profile) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fwd = make(map[string]time.Duration)
	p.bwd = make(map[string]time.Duration)
	p.calls = make(map[string]int64)
}

// Render writes an aligned report to w.
func (p *Profile) Render(w io.Writer) {
	entries := p.Entries()
	total := p.TotalTime()
	fmt.Fprintf(w, "%-12s %10s %10s %10s %7s %6s\n", "op", "fwd", "bwd", "total", "calls", "share")
	for _, e := range entries {
		share := 0.0
		if total > 0 {
			share = 100 * float64(e.Total()) / float64(total)
		}
		fmt.Fprintf(w, "%-12s %10s %10s %10s %7d %5.1f%%\n",
			e.Kind, e.Forward.Round(time.Microsecond), e.Backward.Round(time.Microsecond),
			e.Total().Round(time.Microsecond), e.Calls, share)
	}
	fmt.Fprintf(w, "%-12s %32s\n", "total", total.Round(time.Microsecond))
}
