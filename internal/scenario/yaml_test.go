package scenario

import (
	"strings"
	"testing"
	"time"
)

const sampleYAML = `
# A representative scenario exercising the whole subset.
name: sample
description: "quoted: string"
seed: 42
fleet:
  ranks: 3
  transport: tcp
  recv_timeout: 750ms
job:
  kind: train
  steps: 8
  elastic: true
timeline:
  - at_step: 3
    action: kill_rank
    rank: 2
  - at: 2s              # wall-clock trigger
    action: set_faults
    faults:
      drop_prob: 0.25
      delay: 1ms
asserts:
  - check: recovered_within
    within: 30s
  - check: outcome
    equals: recovered
`

func TestParseYAMLScenario(t *testing.T) {
	spec, err := Parse([]byte(sampleYAML))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "sample" || spec.Seed != 42 {
		t.Fatalf("header mismatch: %+v", spec)
	}
	if spec.Description != "quoted: string" {
		t.Fatalf("quoted scalar: %q", spec.Description)
	}
	if spec.Fleet.Ranks != 3 || spec.Fleet.Transport != "tcp" {
		t.Fatalf("fleet mismatch: %+v", spec.Fleet)
	}
	if spec.Fleet.RecvTimeout.D() != 750*time.Millisecond {
		t.Fatalf("recv_timeout %v", spec.Fleet.RecvTimeout)
	}
	if len(spec.Timeline) != 2 {
		t.Fatalf("timeline %v", spec.Timeline)
	}
	kill := spec.Timeline[0]
	if kill.Action != "kill_rank" || kill.Rank != 2 || kill.AtStep != 3 {
		t.Fatalf("kill event %+v", kill)
	}
	sf := spec.Timeline[1]
	if sf.Action != "set_faults" || sf.At.D() != 2*time.Second {
		t.Fatalf("set_faults event %+v", sf)
	}
	if sf.Faults == nil || sf.Faults.DropProb != 0.25 || sf.Faults.Delay.D() != time.Millisecond {
		t.Fatalf("faults template %+v", sf.Faults)
	}
	if len(spec.Asserts) != 2 || spec.Asserts[0].Within.D() != 30*time.Second {
		t.Fatalf("asserts %+v", spec.Asserts)
	}
	// Defaults applied by validation.
	if spec.Job.Batch != 4 || spec.Job.CkptEvery != 2 {
		t.Fatalf("defaults not applied: %+v", spec.Job)
	}
}

func TestParseJSONScenario(t *testing.T) {
	src := `{"name": "j", "seed": 1, "fleet": {"ranks": 2},
	         "job": {"kind": "collectives"},
	         "asserts": [{"check": "typed_errors", "value": 1}]}`
	spec, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "j" || spec.Job.Kind != "collectives" {
		t.Fatalf("%+v", spec)
	}
	if spec.Job.Rounds != 5 || spec.Job.VecElems != 2048 {
		t.Fatalf("collectives defaults: %+v", spec.Job)
	}
}

func TestParseRejectsUnknownKeys(t *testing.T) {
	_, err := Parse([]byte("name: x\nseed: 1\nflete:\n  ranks: 2\n"))
	if err == nil || !strings.Contains(err.Error(), "flete") {
		t.Fatalf("typo not rejected: %v", err)
	}
}

func TestParseRejectsBadStructure(t *testing.T) {
	cases := map[string]string{
		"tabs":          "name: x\n\tseed: 1\n",
		"duplicate key": "name: x\nname: y\n",
		"orphan indent": "name: x\n    seed: 1\n",
		"non-entry":     "name: x\njust some text\n",
	}
	for what, src := range cases {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("%s accepted", what)
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	cases := map[string]string{
		"missing name":      "seed: 1\n",
		"unknown transport": "name: x\nfleet:\n  transport: carrier-pigeon\n",
		"unknown action":    "name: x\ntimeline:\n  - action: explode\n    at_step: 1\n",
		"wall-clock kill":   "name: x\ntimeline:\n  - action: kill_rank\n    at: 2s\n    rank: 1\n",
		"kill after budget": "name: x\njob:\n  steps: 4\ntimeline:\n  - action: kill_rank\n    at_step: 9\n    rank: 1\n",
		"rank out of range": "name: x\nfleet:\n  ranks: 2\ntimeline:\n  - action: partition\n    at_step: 1\n    rank: 5\n",
		"unknown check":     "name: x\nasserts:\n  - check: vibes\n",
		"bad outcome":       "name: x\nasserts:\n  - check: outcome\n    equals: sideways\n",
		"faultless set":     "name: x\ntimeline:\n  - action: set_faults\n    at_step: 1\n",
	}
	for what, src := range cases {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("%s accepted", what)
		}
	}
}

func TestDurationForms(t *testing.T) {
	spec, err := Parse([]byte("name: d\nfleet:\n  recv_timeout: 2\njob:\n  cycle_time: 1ms\n"))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Fleet.RecvTimeout.D() != 2*time.Second {
		t.Fatalf("numeric seconds: %v", spec.Fleet.RecvTimeout)
	}
	if spec.Job.CycleTime.D() != time.Millisecond {
		t.Fatalf("duration string: %v", spec.Job.CycleTime)
	}
}
