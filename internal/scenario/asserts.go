package scenario

import (
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"dnnperf/internal/train"
)

// evalAssert checks one postcondition against the run's outcome. Every
// check degrades to a failing result with a diagnostic detail rather than
// an error: a scenario whose assertions cannot even be evaluated has
// failed, not crashed.
func evalAssert(a Assert, oc *outcome) AssertResult {
	res := AssertResult{Check: a.Check}
	switch a.Check {
	case "recovered_within":
		res.Pass, res.Detail = assertRecoveredWithin(a.Within.D(), oc)
	case "outcome":
		res.Pass, res.Detail = assertOutcome(a.Equals, oc)
	case "final_step":
		want := int64(a.Value)
		if want <= 0 {
			want = int64(oc.spec.Job.Steps)
		}
		res.Pass, res.Detail = assertFinalStep(want, oc)
	case "checkpoint_valid":
		res.Pass, res.Detail = assertCheckpointValid(oc)
	case "throughput_floor":
		res.Pass = oc.throughput >= a.Value
		res.Detail = fmt.Sprintf("%.2f img/s (floor %.2f)", oc.throughput, a.Value)
	case "straggler_flagged":
		res.Pass, res.Detail = assertStragglerFlagged(a.Rank, oc)
	case "typed_errors":
		res.Pass = oc.typedErrors >= int64(a.Value)
		res.Detail = fmt.Sprintf("%d typed peer errors (want >= %d)", oc.typedErrors, int64(a.Value))
	case "min_dropped":
		var dropped int64
		for _, st := range oc.stats {
			dropped += st.Dropped
		}
		res.Pass = dropped >= int64(a.Value)
		res.Detail = fmt.Sprintf("%d sends dropped (want >= %d)", dropped, int64(a.Value))
	case "metric_min", "metric_max":
		res.Pass, res.Detail = assertMetric(a, oc)
	case "latency_p99_max":
		res.Pass, res.Detail = assertHistQuantile(a, 0.99, oc)
	case "step_time_p50_max":
		res.Pass, res.Detail = assertHistQuantile(a, 0.50, oc)
	case "world_size_final":
		res.Pass, res.Detail = assertWorldSizeFinal(int(a.Value), oc)
	case "regrown_within":
		res.Pass, res.Detail = assertRegrownWithin(a.Within.D(), oc)
	case "no_split_brain":
		res.Pass, res.Detail = assertNoSplitBrain(oc)
	case "sched_complete":
		res.Pass, res.Detail = assertSchedComplete(oc)
	case "utilization_min":
		if oc.sched == nil {
			res.Detail = "run produced no sched report"
			break
		}
		res.Pass = oc.sched.Utilization >= a.Value
		res.Detail = fmt.Sprintf("utilization %.4f (floor %.4f)", oc.sched.Utilization, a.Value)
	case "preemptions_min":
		if oc.sched == nil {
			res.Detail = "run produced no sched report"
			break
		}
		res.Pass = oc.sched.Preemptions >= int(a.Value)
		res.Detail = fmt.Sprintf("%d preemptions (want >= %d)", oc.sched.Preemptions, int(a.Value))
	default:
		res.Detail = fmt.Sprintf("unknown check %q", a.Check)
	}
	return res
}

// assertRecoveredWithin holds when every surviving supervised rank took
// part in at least one membership change — a shrink recovery or a regrow
// admission (a parked minority rank and a restarted joiner never shrink;
// their recovery IS the readmission) — and each change's wall latency
// stayed under the bound.
func assertRecoveredWithin(within time.Duration, oc *outcome) (bool, string) {
	if len(oc.supervised) == 0 {
		return false, "no surviving supervised ranks"
	}
	worst := time.Duration(0)
	for r, res := range oc.supervised {
		if len(res.Recoveries)+len(res.Regrows) == 0 {
			return false, fmt.Sprintf("rank %d never recovered", r)
		}
		for _, rec := range res.Recoveries {
			if rec.Latency > worst {
				worst = rec.Latency
			}
		}
		for _, rg := range res.Regrows {
			if rg.Latency > worst {
				worst = rg.Latency
			}
		}
	}
	if worst > within {
		return false, fmt.Sprintf("slowest recovery %v exceeds %v", worst.Round(time.Millisecond), within)
	}
	return true, fmt.Sprintf("slowest recovery %v (bound %v)", worst.Round(time.Millisecond), within)
}

// assertWorldSizeFinal holds when every surviving supervised rank ended in
// a world of the wanted size (0 = the fleet's declared rank count): the
// regrow brought everyone back, and nobody is stranded in a stale world.
func assertWorldSizeFinal(want int, oc *outcome) (bool, string) {
	if want <= 0 {
		want = oc.spec.Fleet.Ranks
	}
	if len(oc.supervised) == 0 {
		return false, "no surviving supervised ranks"
	}
	for r, res := range oc.supervised {
		if res.WorldSize != want {
			return false, fmt.Sprintf("rank %d ended in world of %d, want %d", r, res.WorldSize, want)
		}
	}
	return true, fmt.Sprintf("all %d surviving ranks ended in world of %d", len(oc.supervised), want)
}

// assertRegrownWithin holds when every surviving supervised rank saw at
// least one successful regrow and the slowest admission stayed under the
// bound.
func assertRegrownWithin(within time.Duration, oc *outcome) (bool, string) {
	if len(oc.supervised) == 0 {
		return false, "no surviving supervised ranks"
	}
	worst := time.Duration(0)
	for r, res := range oc.supervised {
		if len(res.Regrows) == 0 {
			return false, fmt.Sprintf("rank %d never regrew", r)
		}
		for _, rg := range res.Regrows {
			if rg.Latency > worst {
				worst = rg.Latency
			}
		}
	}
	if worst > within {
		return false, fmt.Sprintf("slowest regrow %v exceeds %v", worst.Round(time.Millisecond), within)
	}
	return true, fmt.Sprintf("slowest regrow %v (bound %v)", worst.Round(time.Millisecond), within)
}

// assertNoSplitBrain is the quorum rule's observable postcondition: every
// surviving rank must agree on the final world size AND report the same
// nonzero weights fingerprint — bit-identical model and optimizer state —
// and a rank that parked must have produced no shrink recovery of its own
// (the minority never formed a rival world). Divergent CRCs or a parked
// rank with recoveries are exactly what two concurrently-training
// partitions would leave behind.
func assertNoSplitBrain(oc *outcome) (bool, string) {
	if len(oc.supervised) == 0 {
		return false, "no surviving supervised ranks"
	}
	var crc uint32
	size := -1
	for r, res := range oc.supervised {
		if res.Parked && len(res.Recoveries) > 0 {
			return false, fmt.Sprintf("parked rank %d performed %d shrink recoveries", r, len(res.Recoveries))
		}
		if res.WeightsCRC == 0 {
			return false, fmt.Sprintf("rank %d has no weights fingerprint", r)
		}
		if crc == 0 {
			crc, size = res.WeightsCRC, res.WorldSize
			continue
		}
		if res.WeightsCRC != crc {
			return false, fmt.Sprintf("rank %d weights crc %08x disagrees with %08x", r, res.WeightsCRC, crc)
		}
		if res.WorldSize != size {
			return false, fmt.Sprintf("rank %d world size %d disagrees with %d", r, res.WorldSize, size)
		}
	}
	return true, fmt.Sprintf("%d ranks agree: world=%d weights_crc=%08x", len(oc.supervised), size, crc)
}

// assertSchedComplete is the control plane's liveness postcondition: the
// scheduler drained the entire stream — every job reached Done or Evicted,
// nothing Failed, and no gang deadlock had to be broken by force.
func assertSchedComplete(oc *outcome) (bool, string) {
	rep := oc.sched
	if rep == nil {
		return false, "run produced no sched report"
	}
	if rep.Done+rep.Evicted+rep.Failed != rep.Jobs {
		return false, fmt.Sprintf("%d of %d jobs unaccounted for",
			rep.Jobs-rep.Done-rep.Evicted-rep.Failed, rep.Jobs)
	}
	if rep.Failed > 0 {
		return false, fmt.Sprintf("%d jobs failed", rep.Failed)
	}
	if rep.Deadlocks > 0 {
		return false, fmt.Sprintf("%d gang deadlocks broken by eviction", rep.Deadlocks)
	}
	return true, fmt.Sprintf("%d jobs drained (%d done, %d evicted), no deadlocks",
		rep.Jobs, rep.Done, rep.Evicted)
}

func assertOutcome(want string, oc *outcome) (bool, string) {
	if len(oc.supervised) == 0 {
		return false, "no surviving supervised ranks"
	}
	for r, err := range oc.errs {
		if err != nil {
			return false, fmt.Sprintf("rank %d failed: %v", r, err)
		}
	}
	for r, res := range oc.supervised {
		if res.Outcome.String() != want {
			return false, fmt.Sprintf("rank %d outcome %s, want %s", r, res.Outcome, want)
		}
	}
	return true, fmt.Sprintf("all %d surviving ranks %s", len(oc.supervised), want)
}

func assertFinalStep(want int64, oc *outcome) (bool, string) {
	if len(oc.supervised) == 0 {
		return false, "no surviving supervised ranks"
	}
	for r, res := range oc.supervised {
		if res.FinalStep != want {
			return false, fmt.Sprintf("rank %d reached step %d, want %d", r, res.FinalStep, want)
		}
	}
	return true, fmt.Sprintf("all surviving ranks reached step %d", want)
}

// assertCheckpointValid loads the newest checkpoint through the scenario's
// own model factory — the same validation the supervisor's recovery path
// performs.
func assertCheckpointValid(oc *outcome) (bool, string) {
	if oc.ckptDir == "" {
		return false, "scenario has no checkpoint directory (set ckpt_every)"
	}
	paths, err := filepath.Glob(filepath.Join(oc.ckptDir, "ckpt-*.dnpf"))
	if err != nil || len(paths) == 0 {
		return false, "no checkpoint files written"
	}
	sort.Sort(sort.Reverse(sort.StringSlice(paths)))
	st, err := train.LoadTrainingCheckpointFile(paths[0], oc.newModel())
	if err != nil {
		return false, fmt.Sprintf("%s: %v", filepath.Base(paths[0]), err)
	}
	return true, fmt.Sprintf("%s valid at step %d (%d files)", filepath.Base(paths[0]), st.Step, len(paths))
}

func assertStragglerFlagged(rank int, oc *outcome) (bool, string) {
	for _, f := range oc.flagged {
		if f == rank {
			return true, fmt.Sprintf("rank %d flagged (all flagged: %v)", rank, oc.flagged)
		}
	}
	return false, fmt.Sprintf("rank %d not flagged (flagged: %v)", rank, oc.flagged)
}

// assertHistQuantile bounds a latency quantile: the named histogram's
// q-quantile must stay under `within` on every rank that recorded it.
// step_time_p50_max pins the median step time; latency_p99_max the tail.
// The bound is per rank, not merged: one slow rank hiding inside a healthy
// fleet is exactly what the check is for.
func assertHistQuantile(a Assert, q float64, oc *outcome) (bool, string) {
	if oc.merged == nil {
		return false, "run produced no merged metrics"
	}
	metric := a.Metric
	if metric == "" {
		metric = "train.step_ns"
	}
	bound := a.Within.D()
	worst := -1.0 // histogram unit: nanoseconds for the *_ns families
	worstRank := -1
	for _, snap := range oc.merged.Ranks {
		h, ok := snap.Histograms[metric]
		if !ok {
			continue
		}
		if v := h.Quantile(q); v > worst {
			worst, worstRank = v, snap.Rank
		}
	}
	if worstRank == -1 {
		return false, fmt.Sprintf("histogram %q not recorded on any rank", metric)
	}
	got := time.Duration(worst)
	if got > bound {
		return false, fmt.Sprintf("%s p%g = %v on rank %d exceeds %v", metric, q*100, got.Round(time.Millisecond), worstRank, bound)
	}
	return true, fmt.Sprintf("%s p%g = %v (worst rank %d, bound %v)", metric, q*100, got.Round(time.Millisecond), worstRank, bound)
}

func assertMetric(a Assert, oc *outcome) (bool, string) {
	if oc.merged == nil {
		return false, "run produced no merged metrics"
	}
	v, ok := oc.merged.Totals[a.Metric]
	if !ok {
		return false, fmt.Sprintf("metric %q not in merged totals", a.Metric)
	}
	if a.Check == "metric_min" {
		return float64(v) >= a.Value, fmt.Sprintf("%s=%d (want >= %g)", a.Metric, v, a.Value)
	}
	return float64(v) <= a.Value, fmt.Sprintf("%s=%d (want <= %g)", a.Metric, v, a.Value)
}
