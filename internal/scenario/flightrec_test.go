package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"dnnperf/internal/telemetry"
)

// TestVictimFlightRecorderDump runs a kill-rank scenario with an output
// directory and verifies the doomed rank left a flight-recorder dump behind:
// a post-mortem with the final spans leading up to the crash, readable as
// the documented FlightDump JSON. This is the acceptance contract for the
// flight recorder — a rank that dies mid-run must not die silently.
func TestVictimFlightRecorderDump(t *testing.T) {
	dir := t.TempDir()
	spec, err := Parse([]byte(killRankYAML))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(spec, Options{OutDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("scenario failed: %+v", rep.Asserts)
	}

	path := filepath.Join(dir, "flight-kill_replay-rank2.json")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("victim flight-recorder dump missing: %v", err)
	}
	var dump telemetry.FlightDump
	if err := json.Unmarshal(blob, &dump); err != nil {
		t.Fatalf("dump is not valid FlightDump JSON: %v", err)
	}
	if !dump.FlightRecorder {
		t.Error("dump missing flightRecorder marker")
	}
	if dump.Rank != 2 {
		t.Errorf("dump rank = %d, want 2", dump.Rank)
	}
	if dump.Reason != "killed" {
		t.Errorf("dump reason = %q, want \"killed\"", dump.Reason)
	}
	if len(dump.Events) < 100 {
		t.Errorf("dump holds %d spans, want >= 100 (the victim trained 3 full steps before dying)", len(dump.Events))
	}
	// The final spans must include the training step the victim died after.
	sawStep := false
	for _, ev := range dump.Events {
		if ev.Name == "train.step" {
			sawStep = true
			break
		}
	}
	if !sawStep {
		t.Error("dump carries no train.step span — the post-mortem lost the training timeline")
	}
}
