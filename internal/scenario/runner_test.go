package scenario

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// killRankYAML is the acceptance scenario for deterministic replay: an
// elastic 3-rank in-process job loses rank 2 after step 3, and the
// survivors must shrink, roll back and finish the budget.
const killRankYAML = `
name: kill_replay
seed: 4242
fleet:
  ranks: 3
  transport: inproc
  recv_timeout: 500ms
job:
  kind: train
  steps: 6
  batch: 4
  elastic: true
  ckpt_every: 2
timeline:
  - at_step: 3
    action: kill_rank
    rank: 2
asserts:
  - check: recovered_within
    within: 30s
  - check: outcome
    equals: recovered
  - check: final_step
`

func runOnce(t *testing.T, src string) *Report {
	t.Helper()
	spec, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestKillRankReplayDeterministic runs the same kill-rank scenario twice
// with the same seed and demands byte-identical event logs and a passing
// recovered_within on both runs — the replay contract that makes a chaos
// failure reproducible instead of anecdotal.
func TestKillRankReplayDeterministic(t *testing.T) {
	rep1 := runOnce(t, killRankYAML)
	rep2 := runOnce(t, killRankYAML)
	for i, rep := range []*Report{rep1, rep2} {
		if !rep.Pass {
			t.Errorf("run %d failed: %+v", i+1, rep.Asserts)
		}
		for _, a := range rep.Asserts {
			if a.Check == "recovered_within" && !a.Pass {
				t.Errorf("run %d: recovered_within failed: %s", i+1, a.Detail)
			}
		}
	}
	if !bytes.Equal(rep1.EventLogBytes(), rep2.EventLogBytes()) {
		t.Errorf("event logs differ across same-seed runs:\n--- run 1 ---\n%s--- run 2 ---\n%s",
			rep1.EventLogBytes(), rep2.EventLogBytes())
	}
	if len(rep1.EventLog) == 0 {
		t.Error("event log is empty")
	}
}

// regrowYAML exercises the whole elastic lifecycle in-process: rank 2 is
// killed after step 3, the majority shrinks and keeps training, and once
// a survivor reaches step 5 the dead rank is relaunched as a joiner and
// readmitted, growing the world back to 3.
const regrowYAML = `
name: regrow_replay
seed: 777
fleet:
  ranks: 3
  transport: inproc
  recv_timeout: 250ms
job:
  kind: train
  steps: 8
  batch: 4
  elastic: true
  ckpt_every: 2
timeline:
  - at_step: 3
    action: kill_rank
    rank: 2
  - at_step: 5
    action: restart_rank
    rank: 2
asserts:
  - check: recovered_within
    within: 60s
  - check: regrown_within
    within: 60s
  - check: world_size_final
  - check: no_split_brain
  - check: outcome
    equals: recovered
  - check: final_step
`

// TestRegrowReplayDeterministic runs the restart-and-regrow scenario twice
// with the same seed: both runs must pass every assertion (including the
// split-brain postcondition) and leave byte-identical event logs — regrow
// admission is wall-clock-racy internally, so the log may carry only its
// timing-free facts, and this test is what holds that line.
func TestRegrowReplayDeterministic(t *testing.T) {
	rep1 := runOnce(t, regrowYAML)
	rep2 := runOnce(t, regrowYAML)
	for i, rep := range []*Report{rep1, rep2} {
		if !rep.Pass {
			t.Errorf("run %d failed: %+v", i+1, rep.Asserts)
		}
	}
	if !bytes.Equal(rep1.EventLogBytes(), rep2.EventLogBytes()) {
		t.Errorf("event logs differ across same-seed runs:\n--- run 1 ---\n%s--- run 2 ---\n%s",
			rep1.EventLogBytes(), rep2.EventLogBytes())
	}
	log := string(rep1.EventLogBytes())
	for _, want := range []string{
		"event at_step=5 restart_rank rank=2",
		"regrow joined=[2] world=2->3",
		"rank 2 outcome=recovered",
	} {
		if !strings.Contains(log, want) {
			t.Errorf("event log missing %q:\n%s", want, log)
		}
	}
}

// stormYAML is the multi-event storm: a 5-rank in-process job loses TWO
// ranks after the same step — the surviving 3-of-5 majority must absorb
// both deaths (in one recovery round or two, depending on detection
// timing) — and both casualties are later relaunched and readmitted,
// growing the world back to 5.
const stormYAML = `
name: storm_replay
seed: 1313
fleet:
  ranks: 5
  transport: inproc
  recv_timeout: 500ms
job:
  kind: train
  steps: 10
  batch: 4
  elastic: true
  ckpt_every: 2
timeline:
  - at_step: 3
    action: kill_rank
    rank: 3
  - at_step: 3
    action: kill_rank
    rank: 4
  - at_step: 6
    action: restart_rank
    rank: 3
  - at_step: 6
    action: restart_rank
    rank: 4
asserts:
  - check: recovered_within
    within: 60s
  - check: world_size_final
  - check: no_split_brain
  - check: outcome
    equals: recovered
  - check: final_step
`

// TestStormReplayDeterministic holds the aggregation contract for storms:
// concurrent failures may batch into a different number of recovery rounds
// on each run, so the event log records the aggregate trajectory — sorted
// union of failed ranks, world endpoints, earliest rollback — and THAT
// must be byte-identical across same-seed runs.
func TestStormReplayDeterministic(t *testing.T) {
	rep1 := runOnce(t, stormYAML)
	rep2 := runOnce(t, stormYAML)
	for i, rep := range []*Report{rep1, rep2} {
		if !rep.Pass {
			t.Errorf("run %d failed: %+v", i+1, rep.Asserts)
		}
	}
	if !bytes.Equal(rep1.EventLogBytes(), rep2.EventLogBytes()) {
		t.Errorf("event logs differ across same-seed runs:\n--- run 1 ---\n%s--- run 2 ---\n%s",
			rep1.EventLogBytes(), rep2.EventLogBytes())
	}
	log := string(rep1.EventLogBytes())
	for _, want := range []string{
		"recovery failed=[3 4] world=5->3",
		"regrow joined=[3 4] world=3->5",
		"rank 3 outcome=recovered",
		"rank 4 outcome=recovered",
	} {
		if !strings.Contains(log, want) {
			t.Errorf("event log missing %q:\n%s", want, log)
		}
	}
}

// TestDuplicateKillRejected pins the storm DSL's validation rule: a second
// kill_rank for the same rank is a spec bug (one process cannot die twice),
// not a silently-last-wins override.
func TestDuplicateKillRejected(t *testing.T) {
	const dup = `
name: dup_kill
seed: 1
fleet:
  ranks: 3
job:
  kind: train
  steps: 8
  elastic: true
timeline:
  - at_step: 2
    action: kill_rank
    rank: 2
  - at_step: 4
    action: kill_rank
    rank: 2
`
	if _, err := Parse([]byte(dup)); err == nil || !strings.Contains(err.Error(), "duplicate kill_rank") {
		t.Fatalf("want duplicate kill_rank error, got %v", err)
	}
}

// schedYAML drives a 120-job, 3-tenant synthetic stream through the
// dnnsched gang scheduler on the discrete-event clock.
const schedYAML = `
name: sched_replay
seed: 2024
job:
  kind: sched
sched:
  nodes: 4
  slots_per_node: 8
  jobs: 120
  tenants: 3
asserts:
  - check: sched_complete
  - check: utilization_min
    value: 0.3
  - check: preemptions_min
    value: 1
`

// TestSchedReplayDeterministic runs the scheduler scenario twice: both
// runs must pass (stream drained, no deadlocks, utilization floor met,
// preemption actually exercised) with byte-identical event logs — the
// scheduler's virtual-clock decisions are part of the replay contract.
func TestSchedReplayDeterministic(t *testing.T) {
	rep1 := runOnce(t, schedYAML)
	rep2 := runOnce(t, schedYAML)
	for i, rep := range []*Report{rep1, rep2} {
		if !rep.Pass {
			t.Errorf("run %d failed: %+v", i+1, rep.Asserts)
		}
		if rep.Sched == nil || rep.Sched.Jobs != 120 {
			t.Fatalf("run %d: missing or short sched report: %+v", i+1, rep.Sched)
		}
	}
	if !bytes.Equal(rep1.EventLogBytes(), rep2.EventLogBytes()) {
		t.Error("sched event logs differ across same-seed runs")
	}
}

// faultSoakYAML drives seeded fault injection hard enough that every
// counter class moves, so log equality below is a real test of the
// per-rank fault streams, not of zeros.
const faultSoakYAML = `
name: fault_replay
seed: 31337
fleet:
  ranks: 4
  transport: inproc
  recv_timeout: 250ms
job:
  kind: collectives
  allreduce_alg: ring
  vec_elems: 1024
  rounds: 8
faults:
  delay_prob: 0.2
  delay: 1ms
timeline:
  - at_step: 4
    action: set_faults
    faults:
      drop_prob: 0.2
      delay_prob: 0.1
      delay: 1ms
`

// TestCollectivesReplayDeterministic is the satellite regression: two
// same-seed runs must produce identical event sequences and identical
// per-rank FaultStats (the "rank N faults ..." log lines).
func TestCollectivesReplayDeterministic(t *testing.T) {
	rep1 := runOnce(t, faultSoakYAML)
	rep2 := runOnce(t, faultSoakYAML)
	if !bytes.Equal(rep1.EventLogBytes(), rep2.EventLogBytes()) {
		t.Errorf("event logs differ across same-seed runs:\n--- run 1 ---\n%s--- run 2 ---\n%s",
			rep1.EventLogBytes(), rep2.EventLogBytes())
	}
	stats1 := faultLines(rep1)
	stats2 := faultLines(rep2)
	if len(stats1) != 4 {
		t.Fatalf("want 4 per-rank fault-stat lines, got %d:\n%s", len(stats1), rep1.EventLogBytes())
	}
	for i := range stats1 {
		if stats1[i] != stats2[i] {
			t.Errorf("FaultStats differ for rank %d:\n  run 1: %s\n  run 2: %s", i, stats1[i], stats2[i])
		}
	}
	// The soak is only meaningful if the injected faults actually fired.
	var moved bool
	for _, line := range stats1 {
		if !strings.Contains(line, "dropped=0") || !strings.Contains(line, "delayed=0") {
			moved = true
		}
	}
	if !moved {
		t.Errorf("no fault counters moved; soak too weak:\n%s", strings.Join(stats1, "\n"))
	}
}

func faultLines(rep *Report) []string {
	var out []string
	for _, line := range rep.EventLog {
		if strings.Contains(line, " faults sent=") {
			out = append(out, line)
		}
	}
	return out
}

// TestTrainsimDeterministic covers the simulator path: pure math on the
// seed, so even the float throughput figures must replay exactly.
func TestTrainsimDeterministic(t *testing.T) {
	const src = `
name: sim_replay
seed: 9
fleet:
  transport: trainsim
  nodes: 4
  ppn: 2
job:
  kind: trainsim
  steps: 12
timeline:
  - action: straggle
    rank: 3
    at_step: 1
    factor: 2.5
asserts:
  - check: straggler_flagged
    rank: 3
`
	rep1 := runOnce(t, src)
	rep2 := runOnce(t, src)
	if !rep1.Pass || !rep2.Pass {
		t.Fatalf("trainsim runs failed: %+v / %+v", rep1.Asserts, rep2.Asserts)
	}
	if !bytes.Equal(rep1.EventLogBytes(), rep2.EventLogBytes()) {
		t.Errorf("event logs differ:\n--- run 1 ---\n%s--- run 2 ---\n%s",
			rep1.EventLogBytes(), rep2.EventLogBytes())
	}
	if rep1.ThroughputImgS != rep2.ThroughputImgS {
		t.Errorf("simulated throughput differs: %v vs %v", rep1.ThroughputImgS, rep2.ThroughputImgS)
	}
}

// TestLibraryScenariosValid parses and validates every shipped scenario so
// a schema change that orphans the library fails here, not in CI's smoke
// job.
func TestLibraryScenariosValid(t *testing.T) {
	paths, err := filepath.Glob("../../scenarios/*.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 4 {
		t.Fatalf("scenario library too small: %d files", len(paths))
	}
	for _, path := range paths {
		if _, err := Load(path); err != nil {
			t.Errorf("%s: %v", path, err)
		}
	}
}
