package scenario

import (
	"fmt"
	"os"

	"dnnperf/internal/yamlite"
)

// Scenario files are parsed by the shared internal/yamlite YAML-subset
// parser (the same schema front door cmd/dnnsched job specs use), so YAML
// and JSON stay interchangeable and unknown keys are rejected at parse time.

// Parse decodes a scenario from YAML (default) or JSON (first non-blank
// byte is '{') and validates it.
func Parse(src []byte) (*Spec, error) {
	spec := &Spec{}
	if err := yamlite.Unmarshal(src, spec); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// Load reads and parses a scenario file.
func Load(path string) (*Spec, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	spec, err := Parse(src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return spec, nil
}
