package scenario

import (
	"encoding/json"
	"io"
	"strings"

	"dnnperf/internal/job"
	"dnnperf/internal/telemetry"
)

// Report is the machine-readable outcome of one scenario run.
//
// The EventLog is the replay contract: it contains only logical facts —
// declared trigger points, step numbers, rank outcomes, seeded fault
// counters — never wall-clock readings, so two runs of the same scenario
// with the same seed produce byte-identical logs. Wall-clock data
// (elapsed time, recovery latencies) lives in the other fields, where
// variance is expected.
type Report struct {
	Scenario    string `json:"scenario"`
	Description string `json:"description,omitempty"`
	Seed        int64  `json:"seed"`
	Kind        string `json:"kind"`
	// Pass is the conjunction of every assertion.
	Pass    bool           `json:"pass"`
	Asserts []AssertResult `json:"asserts"`
	// EventLog is the deterministic, replayable record of the run.
	EventLog []string `json:"event_log"`
	// ElapsedMS is the wall time of the run (not part of the event log).
	ElapsedMS int64 `json:"elapsed_ms"`
	// RecoveryLatenciesMS are the per-recovery wall latencies observed by
	// the lowest surviving rank (empty when nothing failed).
	RecoveryLatenciesMS []int64 `json:"recovery_latencies_ms,omitempty"`
	// ThroughputImgS is the measured (train) or simulated (trainsim)
	// images/second, 0 for collectives jobs.
	ThroughputImgS float64 `json:"throughput_img_s,omitempty"`
	// Metrics is the merged end-of-run telemetry snapshot across ranks.
	Metrics *telemetry.MergedMetrics `json:"metrics,omitempty"`
	// Sched is the control plane's full report for sched-kind scenarios:
	// per-tenant queueing/JCT aggregates, the utilization curve, per-job
	// outcomes.
	Sched *job.SchedReport `json:"sched,omitempty"`
	// ReportPath/CkptDir point at on-disk artifacts when an output
	// directory was configured.
	ReportPath string `json:"report_path,omitempty"`
	CkptDir    string `json:"ckpt_dir,omitempty"`
}

// AssertResult is one assertion's verdict.
type AssertResult struct {
	Check  string `json:"check"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail,omitempty"`
}

// EventLogBytes renders the event log as one newline-terminated blob —
// the unit the determinism guarantee (and its regression test) compares.
func (r *Report) EventLogBytes() []byte {
	if len(r.EventLog) == 0 {
		return nil
	}
	return []byte(strings.Join(r.EventLog, "\n") + "\n")
}

// WriteJSON writes the indented report document.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
