// Package scenario is the declarative chaos harness: a scenario file
// declares a fleet, a training job, a timeline of seeded fault events and a
// list of assertions, and the runner executes it end to end against the
// functional stack (inproc or TCP transports, elastic supervised training,
// the fault-injection transport, the straggler detector) or the
// discrete-event simulator for large fleets. Runs are deterministic from
// the scenario seed: the same file run twice produces byte-identical event
// logs, which is what makes a chaos failure replayable instead of
// anecdotal.
package scenario

import (
	"fmt"
	"time"

	"dnnperf/internal/yamlite"
)

// Duration aliases the shared yamlite.Duration: a time.Duration that
// unmarshals from either a Go duration string ("250ms", "2s") or a bare
// JSON number of seconds, so scenario files can write `at: 2s` and
// `recv_timeout: 0.5` interchangeably.
type Duration = yamlite.Duration

// Spec is one scenario file: what to run, what to break, what must hold.
type Spec struct {
	// Name identifies the scenario in reports and logs.
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Seed drives every random stream in the run (fault injection, data
	// sharding, simulator jitter). Two runs with the same seed replay the
	// same event sequence.
	Seed  int64 `json:"seed"`
	Fleet Fleet `json:"fleet"`
	Job   Job   `json:"job"`
	// Sched configures a "sched" job: the simulated cluster and synthetic
	// multi-tenant workload the dnnsched control plane schedules.
	Sched *Sched `json:"sched,omitempty"`
	// Faults is the initial fault-rate template applied to every rank's
	// transport; nil starts clean. A set_faults timeline event swaps it
	// mid-run.
	Faults   *Faults  `json:"faults,omitempty"`
	Timeline []Event  `json:"timeline,omitempty"`
	Asserts  []Assert `json:"asserts,omitempty"`
}

// Sched declares a cluster-scheduling scenario: a synthetic job stream
// pushed through the dnnsched gang scheduler on the discrete-event clock.
// Everything is derived from the scenario seed, so the scheduler's event
// log and per-tenant report replay byte-identically.
type Sched struct {
	// Platform names the hw catalog entry backing the simulated nodes
	// (default Skylake-1).
	Platform string `json:"platform,omitempty"`
	// Nodes/SlotsPerNode shape the cluster (defaults 4 nodes x 8 slots).
	Nodes        int `json:"nodes,omitempty"`
	SlotsPerNode int `json:"slots_per_node,omitempty"`
	// Jobs is the synthetic stream length (default 200); Tenants the number
	// of tenants it is spread across (default 3).
	Jobs    int `json:"jobs,omitempty"`
	Tenants int `json:"tenants,omitempty"`
	// NoPreempt disables priority preemption, for A/B runs.
	NoPreempt bool `json:"no_preempt,omitempty"`
}

// Fleet declares the ranks and the transport they run on.
type Fleet struct {
	// Ranks is the job size (ignored for trainsim, where Nodes*PPN rules).
	Ranks int `json:"ranks,omitempty"`
	// Transport is "inproc" (default), "tcp" (real loopback sockets) or
	// "trainsim" (the discrete-event simulator; no live transport).
	Transport string `json:"transport,omitempty"`
	// RecvTimeout bounds each Recv so faults convert to typed errors
	// instead of hangs. Defaults: 500ms inproc, 1s tcp.
	RecvTimeout Duration `json:"recv_timeout,omitempty"`
	// Nodes/PPN shape the simulated cluster for trainsim fleets.
	Nodes int `json:"nodes,omitempty"`
	PPN   int `json:"ppn,omitempty"`
}

// Job declares the work the fleet performs.
type Job struct {
	// Kind is "train" (default: real supervised SGD through the Horovod
	// engine), "collectives" (a direct allreduce soak on the raw comm
	// layer), "trainsim" (the analytical simulator) or "sched" (a synthetic
	// multi-tenant workload through the dnnsched gang scheduler).
	Kind string `json:"kind,omitempty"`
	// Steps is the global step budget (train), synthesized steps
	// (trainsim straggler runs) — default 8.
	Steps int `json:"steps,omitempty"`
	// Batch is the per-rank minibatch for train jobs (default 4).
	Batch int `json:"batch,omitempty"`
	// CycleTime is the Horovod engine cycle time (default 300µs).
	CycleTime Duration `json:"cycle_time,omitempty"`
	// Elastic marks the job as expecting failures: kill/partition events
	// should end in recovery, not in a dead run. Training always runs
	// supervised; this flag is documentation plus the default for
	// CkptEvery.
	Elastic bool `json:"elastic,omitempty"`
	// CkptEvery is the checkpoint period in steps (default 2 for elastic
	// jobs, 0 otherwise).
	CkptEvery int `json:"ckpt_every,omitempty"`
	// AllreduceAlg forces the collective algorithm: "auto", "ring",
	// "recursive_doubling".
	AllreduceAlg string `json:"allreduce_alg,omitempty"`
	// SegmentBytes sets the ring pipelining segment size (0 = default).
	SegmentBytes int `json:"segment_bytes,omitempty"`
	// RegrowWait keeps finished ranks lingering while the world is smaller
	// than it started, so a late rejoiner (a healed partition, a
	// restart_rank event) is still admitted. Defaults to 30s when the
	// timeline carries a restart_rank/rejoin event or a heal of an elastic
	// job, 0 otherwise.
	RegrowWait Duration `json:"regrow_wait,omitempty"`

	// Collectives jobs: vector length in float32 elements (default 2048)
	// and number of allreduce rounds (default 5).
	VecElems int `json:"vec_elems,omitempty"`
	Rounds   int `json:"rounds,omitempty"`

	// Trainsim jobs: experiment point (defaults: resnet50, tensorflow,
	// Skylake-1, batch 32).
	Model        string `json:"model,omitempty"`
	Framework    string `json:"framework,omitempty"`
	CPU          string `json:"cpu,omitempty"`
	BatchPerProc int    `json:"batch_per_proc,omitempty"`
}

// Faults is a fault-rate template (see mpi.FaultConfig); the per-rank
// random streams are derived from the scenario seed.
type Faults struct {
	DropProb  float64  `json:"drop_prob,omitempty"`
	DelayProb float64  `json:"delay_prob,omitempty"`
	Delay     Duration `json:"delay,omitempty"`
	DupProb   float64  `json:"dup_prob,omitempty"`
}

// Event is one timeline entry: when to fire, and what to do.
//
// Actions:
//
//	kill_rank    — rank trains normally, then aborts its transport after
//	               completing step at_step (requires at_step).
//	restart_rank — relaunch a previously killed rank as a joiner once a
//	               surviving rank completes step at_step: the fresh
//	               process runs the rejoin admission loop and the world
//	               grows back. "rejoin" is an accepted synonym.
//	partition    — full network cut around rank at step at_step (or wall
//	               time at): the target blocks all its sends, every peer
//	               blocks sends toward it.
//	heal         — undo a partition around rank.
//	straggle     — from step at_step on, slow rank's compute by factor
//	               (sleeps (factor-1)x the step's measured compute time).
//	set_faults   — swap every rank's fault-rate template for faults.
type Event struct {
	// At triggers on wall-clock time from run start (partition, heal,
	// set_faults only — wall-clock kills would not replay).
	At Duration `json:"at,omitempty"`
	// AtStep triggers when a rank completes global step AtStep (for
	// collectives jobs: before round AtStep).
	AtStep int64  `json:"at_step,omitempty"`
	Action string `json:"action"`
	// Rank is the event's target (kill_rank, partition, heal, straggle).
	Rank int `json:"rank,omitempty"`
	// Factor is the straggle slowdown multiplier (> 1).
	Factor float64 `json:"factor,omitempty"`
	// Faults is the template a set_faults event installs.
	Faults *Faults `json:"faults,omitempty"`
}

// Assert is one postcondition checked after the run.
//
// Checks:
//
//	recovered_within   — every surviving supervised rank recovered from
//	                     each failure within `within` wall time.
//	outcome            — every surviving supervised rank ended with
//	                     outcome `equals` ("clean"|"recovered").
//	final_step         — every surviving rank reached `value` global
//	                     steps (0 = the job's step budget).
//	checkpoint_valid   — the newest checkpoint on disk loads and
//	                     validates against the scenario model.
//	throughput_floor   — images/sec >= value (trainsim: simulated;
//	                     train: measured — use generous floors).
//	straggler_flagged  — the detector flagged rank `rank`.
//	typed_errors       — the collectives soak observed >= value typed
//	                     peer errors.
//	min_dropped        — fault injection dropped >= value sends in total.
//	metric_min         — merged telemetry counter `metric` total >= value.
//	metric_max         — merged telemetry counter `metric` total <= value.
//	latency_p99_max    — the p99 of histogram `metric` (default
//	                     train.step_ns) stays <= `within` on every rank.
//	step_time_p50_max  — the median per-rank step time (train.step_ns by
//	                     default, or histogram `metric`) stays <= `within`.
//	world_size_final   — every surviving supervised rank ended on a world
//	                     of `value` ranks (0 = the fleet's full size): the
//	                     regrow brought everyone back.
//	regrown_within     — every surviving supervised rank took part in a
//	                     regrow, each within `within` wall time.
//	no_split_brain     — every surviving supervised rank reports the same
//	                     nonzero weights fingerprint and world size, and
//	                     any parked (minority) rank produced zero
//	                     optimizer updates while parked.
//	sched_complete     — the scheduler drained the whole stream: every job
//	                     ended Done or Evicted, none Failed, and no gang
//	                     deadlock had to be broken.
//	utilization_min    — cluster slot utilization >= value (0..1).
//	preemptions_min    — the scheduler performed >= value preemptions.
type Assert struct {
	Check  string   `json:"check"`
	Within Duration `json:"within,omitempty"`
	Value  float64  `json:"value,omitempty"`
	Rank   int      `json:"rank,omitempty"`
	Metric string   `json:"metric,omitempty"`
	Equals string   `json:"equals,omitempty"`
}

// Actions and checks the validator accepts.
var (
	validActions = map[string]bool{
		"kill_rank": true, "restart_rank": true, "rejoin": true,
		"partition": true, "heal": true,
		"straggle": true, "set_faults": true,
	}
	validChecks = map[string]bool{
		"recovered_within": true, "outcome": true, "final_step": true,
		"checkpoint_valid": true, "throughput_floor": true,
		"straggler_flagged": true, "typed_errors": true,
		"min_dropped": true, "metric_min": true, "metric_max": true,
		"latency_p99_max": true, "step_time_p50_max": true,
		"world_size_final": true, "regrown_within": true,
		"no_split_brain": true,
		"sched_complete": true, "utilization_min": true,
		"preemptions_min": true,
	}
)

// withDefaults fills the spec's zero values with the documented defaults
// and returns the effective rank count.
func (s *Spec) withDefaults() {
	if s.Fleet.Transport == "" {
		s.Fleet.Transport = "inproc"
	}
	if s.Job.Kind == "" {
		s.Job.Kind = "train"
	}
	if s.Fleet.RecvTimeout == 0 {
		if s.Fleet.Transport == "tcp" {
			s.Fleet.RecvTimeout = Duration(time.Second)
		} else {
			s.Fleet.RecvTimeout = Duration(500 * time.Millisecond)
		}
	}
	if s.Job.Steps <= 0 {
		s.Job.Steps = 8
	}
	if s.Job.Batch <= 0 {
		s.Job.Batch = 4
	}
	if s.Job.CycleTime <= 0 {
		s.Job.CycleTime = Duration(300 * time.Microsecond)
	}
	if s.Job.Elastic && s.Job.CkptEvery <= 0 {
		s.Job.CkptEvery = 2
	}
	if s.Job.Kind == "collectives" {
		if s.Job.VecElems <= 0 {
			s.Job.VecElems = 2048
		}
		if s.Job.Rounds <= 0 {
			s.Job.Rounds = 5
		}
	}
	if s.Job.Kind == "trainsim" {
		if s.Fleet.Nodes <= 0 {
			s.Fleet.Nodes = 2
		}
		if s.Fleet.PPN <= 0 {
			s.Fleet.PPN = 1
		}
		s.Fleet.Ranks = s.Fleet.Nodes * s.Fleet.PPN
		if s.Job.Model == "" {
			s.Job.Model = "resnet50"
		}
		if s.Job.Framework == "" {
			s.Job.Framework = "tensorflow"
		}
		if s.Job.CPU == "" {
			s.Job.CPU = "Skylake-1"
		}
		if s.Job.BatchPerProc <= 0 {
			s.Job.BatchPerProc = 32
		}
		s.Job.Steps = max(s.Job.Steps, 2)
	} else if s.Job.Kind != "sched" && s.Fleet.Ranks <= 0 {
		s.Fleet.Ranks = 2
	}
	if s.Job.Kind == "sched" {
		if s.Sched == nil {
			s.Sched = &Sched{}
		}
		if s.Sched.Platform == "" {
			s.Sched.Platform = "Skylake-1"
		}
		if s.Sched.Nodes <= 0 {
			s.Sched.Nodes = 4
		}
		if s.Sched.SlotsPerNode <= 0 {
			s.Sched.SlotsPerNode = 8
		}
		if s.Sched.Jobs <= 0 {
			s.Sched.Jobs = 200
		}
		if s.Sched.Tenants <= 0 {
			s.Sched.Tenants = 3
		}
	}
	// Straggle events default to firing from step 1.
	for i := range s.Timeline {
		ev := &s.Timeline[i]
		if ev.Action == "straggle" && ev.AtStep <= 0 {
			ev.AtStep = 1
		}
		if ev.Action == "straggle" && ev.Factor <= 1 {
			ev.Factor = 2.0
		}
	}
	// A timeline that regrows the world needs the survivors to stick around
	// for the admission even when it lands after their final step.
	if s.Job.RegrowWait == 0 {
		for _, ev := range s.Timeline {
			if ev.Action == "restart_rank" || ev.Action == "rejoin" ||
				(ev.Action == "heal" && s.Job.Elastic) {
				s.Job.RegrowWait = Duration(30 * time.Second)
				break
			}
		}
	}
}

// Validate applies defaults and rejects specs the runner cannot execute.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	s.withDefaults()
	switch s.Fleet.Transport {
	case "inproc", "tcp", "trainsim":
	default:
		return fmt.Errorf("scenario %s: unknown transport %q (want inproc, tcp or trainsim)", s.Name, s.Fleet.Transport)
	}
	switch s.Job.Kind {
	case "train", "collectives":
		if s.Fleet.Transport == "trainsim" {
			return fmt.Errorf("scenario %s: job kind %q needs a live transport, not trainsim", s.Name, s.Job.Kind)
		}
		if s.Fleet.Ranks < 2 {
			return fmt.Errorf("scenario %s: %s jobs need >= 2 ranks, got %d", s.Name, s.Job.Kind, s.Fleet.Ranks)
		}
	case "trainsim":
		if s.Fleet.Transport != "trainsim" {
			return fmt.Errorf("scenario %s: trainsim jobs run on the trainsim transport", s.Name)
		}
	case "sched":
		if len(s.Timeline) > 0 {
			return fmt.Errorf("scenario %s: sched jobs take their whole event stream from the seed and support no timeline", s.Name)
		}
	default:
		return fmt.Errorf("scenario %s: unknown job kind %q (want train, collectives, trainsim or sched)", s.Name, s.Job.Kind)
	}
	// A second kill_rank for the same rank would silently shadow the first
	// (one process cannot crash twice); a storm kills distinct ranks.
	killed := map[int]bool{}
	for i, ev := range s.Timeline {
		if ev.Action != "kill_rank" {
			continue
		}
		if killed[ev.Rank] {
			return fmt.Errorf("scenario %s: timeline[%d]: duplicate kill_rank for rank %d", s.Name, i, ev.Rank)
		}
		killed[ev.Rank] = true
	}
	for i, ev := range s.Timeline {
		if !validActions[ev.Action] {
			return fmt.Errorf("scenario %s: timeline[%d]: unknown action %q", s.Name, i, ev.Action)
		}
		switch ev.Action {
		case "kill_rank":
			if ev.AtStep < 1 {
				return fmt.Errorf("scenario %s: timeline[%d]: kill_rank needs at_step >= 1 (wall-clock kills do not replay)", s.Name, i)
			}
			if ev.AtStep >= int64(s.Job.Steps) {
				return fmt.Errorf("scenario %s: timeline[%d]: kill_rank at_step %d must precede the %d-step budget", s.Name, i, ev.AtStep, s.Job.Steps)
			}
		case "restart_rank", "rejoin":
			if s.Job.Kind != "train" {
				return fmt.Errorf("scenario %s: timeline[%d]: %s applies to train jobs", s.Name, i, ev.Action)
			}
			if ev.AtStep < 1 {
				return fmt.Errorf("scenario %s: timeline[%d]: %s needs at_step >= 1 (fired from a survivor's step hook)", s.Name, i, ev.Action)
			}
			killed := false
			for _, k := range s.Timeline {
				if k.Action == "kill_rank" && k.Rank == ev.Rank && k.AtStep < ev.AtStep {
					killed = true
				}
			}
			if !killed {
				return fmt.Errorf("scenario %s: timeline[%d]: %s rank %d needs an earlier kill_rank for the same rank", s.Name, i, ev.Action, ev.Rank)
			}
		case "partition", "heal":
			if ev.AtStep < 1 && ev.At <= 0 {
				return fmt.Errorf("scenario %s: timeline[%d]: %s needs at_step or at", s.Name, i, ev.Action)
			}
		case "straggle":
			if s.Job.Kind == "collectives" {
				return fmt.Errorf("scenario %s: timeline[%d]: straggle applies to train and trainsim jobs", s.Name, i)
			}
		case "set_faults":
			if ev.Faults == nil {
				return fmt.Errorf("scenario %s: timeline[%d]: set_faults needs a faults template", s.Name, i)
			}
			if ev.AtStep < 1 && ev.At <= 0 {
				return fmt.Errorf("scenario %s: timeline[%d]: set_faults needs at_step or at", s.Name, i)
			}
		}
		if ev.Rank < 0 || (ev.Action != "set_faults" && ev.Rank >= s.Fleet.Ranks) {
			return fmt.Errorf("scenario %s: timeline[%d]: rank %d out of range [0,%d)", s.Name, i, ev.Rank, s.Fleet.Ranks)
		}
		if s.Job.Kind == "trainsim" && ev.Action != "straggle" {
			return fmt.Errorf("scenario %s: timeline[%d]: trainsim jobs support only straggle events", s.Name, i)
		}
	}
	for i, a := range s.Asserts {
		if !validChecks[a.Check] {
			return fmt.Errorf("scenario %s: asserts[%d]: unknown check %q", s.Name, i, a.Check)
		}
		switch a.Check {
		case "recovered_within", "regrown_within":
			if a.Within <= 0 {
				return fmt.Errorf("scenario %s: asserts[%d]: %s needs within > 0", s.Name, i, a.Check)
			}
		case "outcome":
			if a.Equals != "clean" && a.Equals != "recovered" {
				return fmt.Errorf("scenario %s: asserts[%d]: outcome equals must be clean or recovered", s.Name, i)
			}
		case "metric_min", "metric_max":
			if a.Metric == "" {
				return fmt.Errorf("scenario %s: asserts[%d]: %s needs a metric name", s.Name, i, a.Check)
			}
		case "latency_p99_max", "step_time_p50_max":
			if a.Within <= 0 {
				return fmt.Errorf("scenario %s: asserts[%d]: %s needs within > 0 (the latency bound)", s.Name, i, a.Check)
			}
		case "straggler_flagged":
			if a.Rank < 0 || a.Rank >= s.Fleet.Ranks {
				return fmt.Errorf("scenario %s: asserts[%d]: rank %d out of range [0,%d)", s.Name, i, a.Rank, s.Fleet.Ranks)
			}
		case "sched_complete", "utilization_min", "preemptions_min":
			if s.Job.Kind != "sched" {
				return fmt.Errorf("scenario %s: asserts[%d]: %s applies to sched jobs", s.Name, i, a.Check)
			}
			if a.Check == "utilization_min" && (a.Value <= 0 || a.Value > 1) {
				return fmt.Errorf("scenario %s: asserts[%d]: utilization_min value must be in (0,1], got %g", s.Name, i, a.Value)
			}
		}
	}
	return nil
}
