package scenario

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dnnperf/internal/hw"
	"dnnperf/internal/job"
	"dnnperf/internal/models"
	"dnnperf/internal/mpi"
	"dnnperf/internal/telemetry"
	"dnnperf/internal/telemetry/detect"
	"dnnperf/internal/train"
	"dnnperf/internal/trainsim"
)

// Options configures one scenario run.
type Options struct {
	// OutDir, when non-empty, receives on-disk artifacts: the report
	// document and the elastic job's checkpoints. Empty keeps checkpoints
	// in a temp dir that is removed after the run.
	OutDir string
	// Log receives human progress lines; nil discards them.
	Log io.Writer
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// outcome carries everything the run observed to the assertion evaluator
// and the report builder.
type outcome struct {
	spec    *Spec
	elapsed time.Duration

	// train jobs
	supervised map[int]*train.SupervisorResult // surviving supervised ranks
	errs       map[int]error                   // per-rank terminal errors
	casualties map[int]string                  // rank -> "killed" | "isolated"
	recoveries []train.RecoveryEvent           // lowest surviving rank's view
	throughput float64
	flagged    []int // detector's straggler list

	regrows []train.RegrowEvent // lowest surviving rank's view

	// collectives jobs
	typedErrors int64
	stats       map[int]mpi.FaultStats
	roundsOK    int

	// trainsim jobs
	sim      *trainsim.Result
	straggle *trainsim.StragglerResult

	// sched jobs
	sched *job.SchedReport

	merged   *telemetry.MergedMetrics
	ckptDir  string
	newModel func() *models.Model

	eventLog []string
}

func (oc *outcome) log(format string, args ...any) {
	oc.eventLog = append(oc.eventLog, fmt.Sprintf(format, args...))
}

// Run executes a validated scenario and returns its report. An error
// means the run could not be staged (bad spec, transport bootstrap
// failure); a staged run that violates its assertions returns a report
// with Pass=false and a nil error.
func Run(spec *Spec, opts Options) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	opts.logf("scenario %s: seed=%d kind=%s transport=%s ranks=%d",
		spec.Name, spec.Seed, spec.Job.Kind, spec.Fleet.Transport, spec.Fleet.Ranks)

	var oc *outcome
	var err error
	switch spec.Job.Kind {
	case "train":
		oc, err = runTrain(spec, opts)
	case "collectives":
		oc, err = runCollectives(spec, opts)
	case "sched":
		oc, err = runSched(spec, opts)
	default:
		oc, err = runTrainsim(spec, opts)
	}
	if err != nil {
		return nil, err
	}
	oc.elapsed = time.Since(start)

	rep := &Report{
		Scenario:       spec.Name,
		Description:    spec.Description,
		Seed:           spec.Seed,
		Kind:           spec.Job.Kind,
		Pass:           true,
		EventLog:       oc.eventLog,
		ElapsedMS:      oc.elapsed.Milliseconds(),
		ThroughputImgS: oc.throughput,
		Metrics:        oc.merged,
		Sched:          oc.sched,
	}
	for _, ev := range oc.recoveries {
		rep.RecoveryLatenciesMS = append(rep.RecoveryLatenciesMS, ev.Latency.Milliseconds())
	}
	for _, a := range spec.Asserts {
		res := evalAssert(a, oc)
		rep.Asserts = append(rep.Asserts, res)
		rep.Pass = rep.Pass && res.Pass
		opts.logf("  assert %-18s %s  %s", a.Check, passWord(res.Pass), res.Detail)
	}
	if opts.OutDir != "" {
		rep.CkptDir = oc.ckptDir
		path := filepath.Join(opts.OutDir, "report-"+spec.Name+".json")
		if f, ferr := os.Create(path); ferr == nil {
			rep.ReportPath = path
			werr := rep.WriteJSON(f)
			if cerr := f.Close(); werr == nil && cerr == nil {
				opts.logf("  report: %s", path)
			}
		}
	} else if oc.ckptDir != "" {
		os.RemoveAll(oc.ckptDir)
		rep.CkptDir = ""
	}
	opts.logf("scenario %s: %s (%d ms)", spec.Name, passWord(rep.Pass), rep.ElapsedMS)
	return rep, nil
}

func passWord(ok bool) string {
	if ok {
		return "pass"
	}
	return "FAIL"
}

// faultConfig renders a template into the mpi layer's config, anchored to
// the scenario seed so every random stream replays.
func faultConfig(seed int64, f *Faults) mpi.FaultConfig {
	if f == nil {
		return mpi.FaultConfig{Seed: seed}
	}
	return mpi.FaultConfig{
		Seed:      seed,
		DropProb:  f.DropProb,
		DelayProb: f.DelayProb,
		Delay:     f.Delay.D(),
		DupProb:   f.DupProb,
	}
}

// buildFleet stages the live transports: the raw job, one FaultTransport
// per rank, and tuned communicators over them. The returned rejoin factory
// relaunches a dead rank as a fresh endpoint (a restart_rank event's
// joiner): a drained in-process mailbox set, or a new socket endpoint that
// finds the job through rank 0's retained rendezvous listener.
func buildFleet(spec *Spec) (fts []*mpi.FaultTransport, comms []*mpi.Comm, rejoin func(rank int) (*mpi.Comm, error), err error) {
	n := spec.Fleet.Ranks
	base := faultConfig(spec.Seed, spec.Faults)
	raw := make([]*mpi.Comm, n)
	tune := func(c *mpi.Comm) error {
		if spec.Job.AllreduceAlg != "" {
			alg, aerr := mpi.ParseAllreduceAlg(spec.Job.AllreduceAlg)
			if aerr != nil {
				return aerr
			}
			if aerr := c.SetAllreduceAlg(alg); aerr != nil {
				return aerr
			}
		}
		if spec.Job.SegmentBytes > 0 {
			c.SetSegmentBytes(spec.Job.SegmentBytes)
		}
		return nil
	}
	wrap := func(c *mpi.Comm) (*mpi.Comm, error) {
		cc := mpi.NewComm(mpi.NewFaultTransport(c.Endpoint(), base))
		if err := tune(cc); err != nil {
			return nil, err
		}
		return cc, nil
	}
	switch spec.Fleet.Transport {
	case "inproc":
		w, werr := mpi.NewWorldOpts(n, mpi.WorldOptions{RecvTimeout: spec.Fleet.RecvTimeout.D()})
		if werr != nil {
			return nil, nil, nil, werr
		}
		for r := 0; r < n; r++ {
			raw[r] = w.Comm(r)
		}
		rejoin = func(rank int) (*mpi.Comm, error) { return wrap(w.Rejoin(rank)) }
	case "tcp":
		topts := mpi.TCPOptions{
			RecvTimeout:  spec.Fleet.RecvTimeout.D(),
			DrainTimeout: 200 * time.Millisecond,
		}
		tcp, terr := mpi.StartLocalTCPJobOpts(n, topts)
		if terr != nil {
			return nil, nil, nil, terr
		}
		raw = tcp
		rootAddr := raw[0].PeerAddrs()[0]
		rejoin = func(rank int) (*mpi.Comm, error) {
			jc, jerr := mpi.RejoinTCP(rank, n, rootAddr, "127.0.0.1:0", topts)
			if jerr != nil {
				return nil, jerr
			}
			return wrap(jc)
		}
	default:
		return nil, nil, nil, fmt.Errorf("scenario: transport %q has no live fleet", spec.Fleet.Transport)
	}
	fts = make([]*mpi.FaultTransport, n)
	comms = make([]*mpi.Comm, n)
	for r := 0; r < n; r++ {
		fts[r] = mpi.NewFaultTransport(raw[r].Endpoint(), base)
		comms[r] = mpi.NewComm(fts[r])
		if err := tune(comms[r]); err != nil {
			return nil, nil, nil, err
		}
	}
	return fts, comms, rejoin, nil
}

// trainControl is the shared state of a train-kind run: the fault
// transports the timeline manipulates, per-(event,rank) fire-once guards,
// and the straggler detector every rank feeds.
type trainControl struct {
	spec  *Spec
	fts   []*mpi.FaultTransport
	det   *detect.Detector
	once  []map[int]*sync.Once // once[eventIdx][rank]
	fired []atomic.Bool        // event ever fired on any rank
	// restart relaunches a killed rank as a joiner; set by runTrain before
	// the fleet starts. Fired at most once per restart_rank event, from the
	// first surviving rank whose step reaches the trigger.
	restart func(rank int)
}

func newTrainControl(spec *Spec, fts []*mpi.FaultTransport, det *detect.Detector) *trainControl {
	ctl := &trainControl{
		spec:  spec,
		fts:   fts,
		det:   det,
		once:  make([]map[int]*sync.Once, len(spec.Timeline)),
		fired: make([]atomic.Bool, len(spec.Timeline)),
	}
	for i := range ctl.once {
		ctl.once[i] = make(map[int]*sync.Once, len(fts))
		for r := range fts {
			ctl.once[i][r] = &sync.Once{}
		}
	}
	return ctl
}

// applyEvent applies one timeline event on rank r's transport. Partitions
// are symmetric: the target blocks all its sends, peers block sends
// toward it, so both directions of the cut are real.
func (ctl *trainControl) applyEvent(i, r int, ev *Event) {
	ctl.once[i][r].Do(func() {
		switch ev.Action {
		case "partition":
			if r == ev.Rank {
				ctl.fts[r].PartitionAll()
			} else {
				ctl.fts[r].Partition(ev.Rank)
			}
		case "heal":
			if r == ev.Rank {
				ctl.fts[r].HealAll()
			} else {
				ctl.fts[r].Heal(ev.Rank)
				// The cut was symmetric, so the heal must be too — and the
				// target cannot restore its own side: a rank that lost
				// quorum parks, its step hook stops firing, and it would
				// stay self-isolated forever waiting for a heal only it
				// could apply.
				ctl.fts[ev.Rank].Heal(r)
			}
		case "set_faults":
			ctl.fts[r].SetConfig(faultConfig(ctl.spec.Seed, ev.Faults))
		}
		ctl.fired[i].Store(true)
	})
}

// applyWallEvent fires a wall-clock event across the whole fleet at once.
func (ctl *trainControl) applyWallEvent(i int, ev *Event) {
	for r := range ctl.fts {
		ctl.applyEvent(i, r, ev)
	}
}

// hook is rank r's OnStep observer: it fires step-scheduled events,
// injects the straggle slowdown, and feeds the detector the rank's
// per-step compute signal. Duration-CommWait is the honest per-rank
// latency: in lock-step data parallelism the wall step time equalizes
// across ranks (peers absorb a straggler's delay as allreduce wait), so
// only the compute component plus any injected stall distinguishes a
// slow rank.
func (ctl *trainControl) hook(r int) func(int64, train.StepStats) {
	return func(step int64, st train.StepStats) {
		var extra time.Duration
		for i := range ctl.spec.Timeline {
			ev := &ctl.spec.Timeline[i]
			if ev.Action == "kill_rank" || ev.AtStep <= 0 {
				continue
			}
			if ev.Action == "restart_rank" || ev.Action == "rejoin" {
				// >= not ==: after a recovery rollback the survivors replay
				// steps, and the trigger step may land mid-replay on a rank
				// that already passed it before the failure. The CAS keeps
				// the relaunch single-shot; the dead rank itself obviously
				// cannot fire its own restart.
				if r != ev.Rank && step >= ev.AtStep &&
					ctl.fired[i].CompareAndSwap(false, true) && ctl.restart != nil {
					ctl.restart(ev.Rank)
				}
				continue
			}
			if ev.Action == "straggle" {
				if ev.Rank == r && step >= ev.AtStep {
					ctl.fired[i].Store(true)
					d := time.Duration(float64(st.Duration-st.CommWait) * (ev.Factor - 1))
					if d > 0 {
						time.Sleep(d)
						extra += d
					}
				}
				continue
			}
			if step == ev.AtStep {
				ctl.applyEvent(i, r, ev)
			}
		}
		compute := st.Duration - st.CommWait
		if compute < 0 {
			compute = 0
		}
		ctl.det.ObserveStep(r, compute+extra)
	}
}

// jobSpec renders the scenario's train job into the shared job.Spec schema
// — the single definition mpirun, dnnsched and the experiment runner
// execute — so every factory, engine and supervisor knob comes from one
// place. ckptDir is the resolved on-disk checkpoint directory ("" = none).
func jobSpec(spec *Spec, ckptDir string) (*job.Spec, error) {
	js := &job.Spec{
		Name:         spec.Name,
		PPN:          spec.Fleet.Ranks,
		Steps:        spec.Job.Steps,
		Batch:        spec.Job.Batch,
		CycleTime:    spec.Job.CycleTime,
		Seed:         spec.Seed,
		Elastic:      spec.Job.Elastic,
		CkptDir:      ckptDir,
		CkptEvery:    spec.Job.CkptEvery,
		RegrowWait:   spec.Job.RegrowWait,
		RecvTimeout:  spec.Fleet.RecvTimeout,
		AllreduceAlg: spec.Job.AllreduceAlg,
		SegmentBytes: spec.Job.SegmentBytes,
	}
	// Scenario training predates LR scheduling: keep the constant-rate
	// optimizer so event logs replay across the refactor.
	js.LRPolicy = "constant"
	if err := js.Validate(); err != nil {
		return nil, err
	}
	return js, nil
}

func runTrain(spec *Spec, opts Options) (*outcome, error) {
	n := spec.Fleet.Ranks
	fts, comms, rejoinFn, err := buildFleet(spec)
	if err != nil {
		return nil, err
	}
	regs := make([]*telemetry.Registry, n)
	for r := 0; r < n; r++ {
		regs[r] = telemetry.New()
	}
	det := detect.New(detect.Config{}, regs[0], nil)
	ctl := newTrainControl(spec, fts, det)

	ckptDir := ""
	if spec.Job.CkptEvery > 0 {
		base := opts.OutDir
		if base == "" {
			tmp, terr := os.MkdirTemp("", "scenario-"+spec.Name+"-")
			if terr != nil {
				return nil, terr
			}
			base = tmp
		}
		ckptDir = filepath.Join(base, "ckpt-"+spec.Name)
		if err := os.MkdirAll(ckptDir, 0o755); err != nil {
			return nil, err
		}
	}

	js, err := jobSpec(spec, ckptDir)
	if err != nil {
		return nil, err
	}
	newModel, _, _ := js.Factories()

	// kill_rank targets run doomed (train, then abort); everyone else runs
	// the supervised elastic loop.
	kills := map[int]int64{}
	for _, ev := range spec.Timeline {
		if ev.Action == "kill_rank" {
			kills[ev.Rank] = ev.AtStep
		}
	}
	partTargets := map[int]bool{}
	for _, ev := range spec.Timeline {
		if ev.Action == "partition" {
			partTargets[ev.Rank] = true
		}
	}
	restarts := map[int]bool{}
	for _, ev := range spec.Timeline {
		if ev.Action == "restart_rank" || ev.Action == "rejoin" {
			restarts[ev.Rank] = true
		}
	}
	regrowWait := spec.Job.RegrowWait.D()

	// restart_rank relaunches a killed rank as a joiner once a survivor's
	// step hook trips the trigger. The joiner rendezvouses through the
	// rejoin factory, runs the admission loop, and — if readmitted — trains
	// to the end like everyone else.
	joinResults := make([]*train.SupervisorResult, n)
	joinErrs := make([]error, n)
	var joinWG sync.WaitGroup
	restartOnce := make([]sync.Once, n)
	ctl.restart = func(rank int) {
		restartOnce[rank].Do(func() {
			joinWG.Add(1)
			go func() {
				defer joinWG.Done()
				jc, jerr := rejoinFn(rank)
				if jerr != nil {
					joinErrs[rank] = fmt.Errorf("scenario: restart rank %d: %w", rank, jerr)
					return
				}
				scfg := js.SupervisorConfig(jc)
				scfg.Telemetry = regs[rank]
				scfg.OnStep = ctl.hook(rank)
				scfg.Joiner = true
				scfg.RejoinTimeout = regrowWait
				joinResults[rank], joinErrs[rank] = train.Supervise(scfg)
			}()
		})
	}

	// Wall-clock events fire fleet-wide from timers.
	var timers []*time.Timer
	for i := range spec.Timeline {
		ev := &spec.Timeline[i]
		if ev.At > 0 && ev.AtStep <= 0 && ev.Action != "kill_rank" && ev.Action != "straggle" {
			i, ev := i, ev
			timers = append(timers, time.AfterFunc(ev.At.D(), func() { ctl.applyWallEvent(i, ev) }))
		}
	}
	defer func() {
		for _, t := range timers {
			t.Stop()
		}
	}()

	results := make([]*train.SupervisorResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if killStep, doomed := kills[r]; doomed {
				// The doomed rank carries a ring-only tracer feeding a flight
				// recorder: the kill leaves its final spans on disk (under
				// OutDir) instead of vanishing with the rank.
				vtr := telemetry.NewTracer()
				vtr.SetPID(r)
				vfr := telemetry.NewFlightRecorder(0)
				vtr.SetFlightRecorder(vfr, true)
				errs[r] = js.RunVictimTraced(comms[r], killStep, vtr, ctl.hook(r))
				if opts.OutDir != "" && vfr.Len() > 0 {
					path := filepath.Join(opts.OutDir, fmt.Sprintf("flight-%s-rank%d.json", spec.Name, r))
					if vfr.DumpToFile(path, r, "killed") == nil {
						opts.logf("  rank %d: flight recorder: %d span(s) -> %s", r, vfr.Len(), path)
					}
				}
				return
			}
			scfg := js.SupervisorConfig(comms[r])
			scfg.Telemetry = regs[r]
			scfg.OnStep = ctl.hook(r)
			scfg.RejoinTimeout = regrowWait
			results[r], errs[r] = train.Supervise(scfg)
		}(r)
	}
	wg.Wait()
	joinWG.Wait()

	oc := &outcome{
		spec:       spec,
		supervised: map[int]*train.SupervisorResult{},
		errs:       map[int]error{},
		casualties: map[int]string{},
		ckptDir:    ckptDir,
		newModel:   newModel,
	}
	for r := 0; r < n; r++ {
		if _, doomed := kills[r]; doomed {
			if joinResults[r] != nil && joinErrs[r] == nil {
				// The restarted incarnation was readmitted; it speaks for
				// the rank from here on.
				oc.supervised[r] = joinResults[r]
				continue
			}
			if restarts[r] && joinErrs[r] != nil {
				opts.logf("  rank %d: restart: %v", r, joinErrs[r])
			}
			oc.casualties[r] = "killed"
			continue
		}
		if errs[r] != nil && partTargets[r] {
			// A partitioned rank that could not rejoin is an expected
			// casualty, not a scenario failure.
			oc.casualties[r] = "isolated"
			continue
		}
		oc.errs[r] = errs[r]
		if errs[r] == nil && results[r] != nil {
			oc.supervised[r] = results[r]
		}
		if errs[r] != nil {
			opts.logf("  rank %d: %v", r, errs[r])
		}
	}
	survivors := make([]int, 0, n)
	for r := 0; r < n; r++ {
		if _, ok := oc.supervised[r]; ok {
			survivors = append(survivors, r)
		}
	}
	if len(survivors) > 0 {
		low := oc.supervised[survivors[0]]
		oc.recoveries = low.Recoveries
		oc.regrows = low.Regrows
		oc.throughput = train.Throughput(low.Steps)
	}
	oc.flagged = det.Stragglers()
	snaps := make([]telemetry.Snapshot, 0, n)
	for r := 0; r < n; r++ {
		s := regs[r].Snapshot()
		s.Rank = r
		snaps = append(snaps, s)
	}
	m := telemetry.Merge(snaps)
	oc.merged = &m

	buildTrainEventLog(oc, ctl, survivors)
	return oc, nil
}

// buildTrainEventLog assembles the deterministic replay record: declared
// trigger points, the recovery trajectory, per-rank outcomes. No
// wall-clock values — those live in the report.
func buildTrainEventLog(oc *outcome, ctl *trainControl, survivors []int) {
	spec := oc.spec
	oc.log("scenario %s seed=%d", spec.Name, spec.Seed)
	oc.log("fleet ranks=%d transport=%s", spec.Fleet.Ranks, spec.Fleet.Transport)
	oc.log("job kind=train steps=%d batch=%d elastic=%t ckpt_every=%d",
		spec.Job.Steps, spec.Job.Batch, spec.Job.Elastic, spec.Job.CkptEvery)
	for i := range spec.Timeline {
		ev := &spec.Timeline[i]
		if ev.Action == "kill_rank" {
			oc.log("event at_step=%d kill_rank rank=%d", ev.AtStep, ev.Rank)
			continue
		}
		if !ctl.fired[i].Load() {
			continue
		}
		switch ev.Action {
		case "straggle":
			oc.log("event at_step=%d straggle rank=%d factor=%g", ev.AtStep, ev.Rank, ev.Factor)
		case "set_faults":
			oc.log("event %s set_faults drop=%g delay_prob=%g dup=%g",
				trigger(ev), ev.Faults.DropProb, ev.Faults.DelayProb, ev.Faults.DupProb)
		default:
			oc.log("event %s %s rank=%d", trigger(ev), ev.Action, ev.Rank)
		}
	}
	// Concurrent failures batch differently run to run — two ranks killed at
	// the same step may be absorbed in one recovery round or two, depending
	// on detection timing — so per-round lines would not replay. The
	// aggregate is timing-free and total: the sorted union of failed ranks,
	// the world trajectory endpoints, and the earliest rollback step. The
	// same argument covers regrow admissions.
	if len(oc.recoveries) > 0 {
		failed := map[int]bool{}
		resume := oc.recoveries[0].ResumeStep
		for _, rec := range oc.recoveries {
			for _, r := range rec.FailedRanks {
				failed[r] = true
			}
			if rec.ResumeStep < resume {
				resume = rec.ResumeStep
			}
		}
		oc.log("recovery failed=%v world=%d->%d resume_step=%d",
			sortedRanks(failed), oc.recoveries[0].OldSize,
			oc.recoveries[len(oc.recoveries)-1].NewSize, resume)
	}
	if len(oc.regrows) > 0 {
		joined := map[int]bool{}
		for _, rg := range oc.regrows {
			for _, r := range rg.Joined {
				joined[r] = true
			}
		}
		oc.log("regrow joined=%v world=%d->%d",
			sortedRanks(joined), oc.regrows[0].OldSize,
			oc.regrows[len(oc.regrows)-1].NewSize)
	}
	for r := 0; r < spec.Fleet.Ranks; r++ {
		if word, ok := oc.casualties[r]; ok {
			oc.log("rank %d outcome=%s", r, word)
			continue
		}
		if res, ok := oc.supervised[r]; ok {
			if res.Parked {
				oc.log("rank %d outcome=%s final_step=%d parked_step=%d",
					r, res.Outcome, res.FinalStep, res.ParkedStep)
				continue
			}
			oc.log("rank %d outcome=%s final_step=%d", r, res.Outcome, res.FinalStep)
			continue
		}
		oc.log("rank %d outcome=failed", r)
	}
	if hasAction(spec, "straggle") {
		fl := append([]int(nil), oc.flagged...)
		sort.Ints(fl)
		oc.log("detect flagged=%v", fl)
	}
	_ = survivors
}

// sortedRanks renders a rank set as a sorted slice for stable logging.
func sortedRanks(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// trigger renders an event's declared firing point.
func trigger(ev *Event) string {
	if ev.AtStep > 0 {
		return fmt.Sprintf("at_step=%d", ev.AtStep)
	}
	return fmt.Sprintf("at=%s", ev.At)
}

func hasAction(spec *Spec, action string) bool {
	for _, ev := range spec.Timeline {
		if ev.Action == action {
			return true
		}
	}
	return false
}

func runCollectives(spec *Spec, opts Options) (*outcome, error) {
	n := spec.Fleet.Ranks
	fts, comms, _, err := buildFleet(spec)
	if err != nil {
		return nil, err
	}
	regs := make([]*telemetry.Registry, n)
	for r := 0; r < n; r++ {
		regs[r] = telemetry.New()
		comms[r].SetTelemetry(regs[r])
	}
	oc := &outcome{spec: spec, stats: map[int]mpi.FaultStats{}}
	oc.log("scenario %s seed=%d", spec.Name, spec.Seed)
	oc.log("fleet ranks=%d transport=%s", n, spec.Fleet.Transport)
	oc.log("job kind=collectives rounds=%d vec_elems=%d alg=%s",
		spec.Job.Rounds, spec.Job.VecElems, orAuto(spec.Job.AllreduceAlg))

	want := float32(n * (n - 1) / 2)
	for round := int64(1); round <= int64(spec.Job.Rounds); round++ {
		// The control loop is single-threaded, so round-scheduled events
		// apply to every transport before the round's first send —
		// identical positions in each rank's send sequence on every run.
		for i := range spec.Timeline {
			ev := &spec.Timeline[i]
			if ev.AtStep != round {
				continue
			}
			for r := 0; r < n; r++ {
				applyCollectiveEvent(spec, fts, i, r, ev)
			}
			switch ev.Action {
			case "set_faults":
				oc.log("event at_round=%d set_faults drop=%g delay_prob=%g dup=%g",
					round, ev.Faults.DropProb, ev.Faults.DelayProb, ev.Faults.DupProb)
			default:
				oc.log("event at_round=%d %s rank=%d", round, ev.Action, ev.Rank)
			}
		}
		errsR := make([]error, n)
		bufs := make([][]float32, n)
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				buf := make([]float32, spec.Job.VecElems)
				for i := range buf {
					buf[i] = float32(r)
				}
				bufs[r] = buf
				errsR[r] = comms[r].Allreduce(buf, mpi.OpSum)
			}(r)
		}
		wg.Wait()
		typed, failed, wrong := 0, 0, 0
		for r := 0; r < n; r++ {
			if errsR[r] != nil {
				failed++
				if _, ok := mpi.AsPeerError(errsR[r]); ok {
					typed++
				}
			} else if bufs[r][0] != want {
				wrong++
			}
		}
		oc.typedErrors += int64(typed)
		if failed == 0 && wrong == 0 {
			oc.roundsOK++
			oc.log("round %d ok", round)
			continue
		}
		// A failed collective poisons the tag space (stray frames); stop
		// the soak here, deterministically.
		oc.log("round %d failed errors=%d typed=%d wrong_sums=%d", round, failed, typed, wrong)
		break
	}
	// Every Allreduce has returned and the ring sender drains before
	// returning, so the counters are final — and, because each rank's
	// fault stream is seeded and drawn in send order, identical on every
	// same-seed run.
	for r := 0; r < n; r++ {
		st := fts[r].Stats()
		oc.stats[r] = st
		oc.log("rank %d faults sent=%d dropped=%d delayed=%d duplicated=%d blocked=%d",
			r, st.Sent, st.Dropped, st.Delayed, st.Duplicated, st.Blocked)
	}
	snaps := make([]telemetry.Snapshot, 0, n)
	for r := 0; r < n; r++ {
		s := regs[r].Snapshot()
		s.Rank = r
		snaps = append(snaps, s)
	}
	m := telemetry.Merge(snaps)
	oc.merged = &m
	for r := 0; r < n; r++ {
		comms[r].Close()
	}
	return oc, nil
}

// applyCollectiveEvent is the collectives-kind event application: no
// fire-once bookkeeping needed, the control loop already fires each event
// exactly once.
func applyCollectiveEvent(spec *Spec, fts []*mpi.FaultTransport, _ int, r int, ev *Event) {
	switch ev.Action {
	case "partition":
		if r == ev.Rank {
			fts[r].PartitionAll()
		} else {
			fts[r].Partition(ev.Rank)
		}
	case "heal":
		if r == ev.Rank {
			fts[r].HealAll()
		} else {
			fts[r].Heal(ev.Rank)
		}
	case "set_faults":
		fts[r].SetConfig(faultConfig(spec.Seed, ev.Faults))
	}
}

func orAuto(s string) string {
	if s == "" {
		return "auto"
	}
	return s
}

func runTrainsim(spec *Spec, opts Options) (*outcome, error) {
	cpu, err := hw.ByLabel(spec.Job.CPU)
	if err != nil {
		return nil, err
	}
	// The base point runs through the simulated job backend — the same
	// estimator dnnsched schedules against — so a scenario's simulated
	// throughput and a sched run's completion times come from one model.
	js := &job.Spec{
		Name:      spec.Name,
		Model:     spec.Job.Model,
		Framework: spec.Job.Framework,
		Platform:  spec.Job.CPU,
		Nodes:     spec.Fleet.Nodes,
		PPN:       spec.Fleet.PPN,
		Batch:     spec.Job.BatchPerProc,
		Steps:     spec.Job.Steps,
		Seed:      spec.Seed,
	}
	if err := js.Validate(); err != nil {
		return nil, err
	}
	res, err := job.NewSimBackend().Run(&job.RunContext{Spec: *js})
	if err != nil {
		return nil, err
	}
	base := *res.Sim
	cfg := trainsim.Config{
		Model:        spec.Job.Model,
		Framework:    spec.Job.Framework,
		CPU:          cpu,
		Nodes:        spec.Fleet.Nodes,
		PPN:          spec.Fleet.PPN,
		BatchPerProc: spec.Job.BatchPerProc,
		Seed:         spec.Seed,
	}
	oc := &outcome{spec: spec, sim: &base, throughput: base.ImagesPerSec}
	oc.log("scenario %s seed=%d", spec.Name, spec.Seed)
	oc.log("fleet ranks=%d transport=trainsim nodes=%d ppn=%d",
		spec.Fleet.Ranks, spec.Fleet.Nodes, spec.Fleet.PPN)
	oc.log("job kind=trainsim model=%s framework=%s cpu=%s batch=%d",
		spec.Job.Model, spec.Job.Framework, spec.Job.CPU, spec.Job.BatchPerProc)
	// The simulator is pure math on the seed, so its floats replay
	// bit-for-bit and may appear in the deterministic log.
	oc.log("sim images_per_sec=%.2f iter_ms=%.3f global_batch=%d",
		base.ImagesPerSec, base.IterTimeSec*1e3, base.GlobalBatch)

	for i := range spec.Timeline {
		ev := &spec.Timeline[i]
		if ev.Action != "straggle" {
			continue
		}
		reg := telemetry.New()
		sres, serr := trainsim.SimulateStraggler(trainsim.StragglerConfig{
			Sim:        cfg,
			Steps:      spec.Job.Steps,
			SlowRank:   ev.Rank,
			SlowFactor: ev.Factor,
			Telemetry:  reg,
		})
		if serr != nil {
			return nil, serr
		}
		oc.straggle = &sres
		oc.flagged = sres.Stragglers
		s := reg.Snapshot()
		m := telemetry.Merge([]telemetry.Snapshot{s})
		oc.merged = &m
		oc.log("event at_step=%d straggle rank=%d factor=%g", ev.AtStep, ev.Rank, ev.Factor)
		fl := append([]int(nil), sres.Stragglers...)
		sort.Ints(fl)
		oc.log("detect flagged=%v flagged_at_step=%d max_skew=%.3f",
			fl, sres.FlaggedAtStep, sres.MaxSkew)
		break // one straggler injection per scenario
	}
	return oc, nil
}

// runSched pushes a seeded synthetic multi-tenant workload through the
// dnnsched gang scheduler on the discrete-event clock. The run is a pure
// function of the scenario seed — job arrivals, shapes, priorities, and
// every placement/preemption decision — so the scheduler's own event log
// (virtual timestamps included) goes into the replay record verbatim.
func runSched(spec *Spec, opts Options) (*outcome, error) {
	sc := spec.Sched
	w := &job.Workload{
		Name: spec.Name,
		Seed: spec.Seed,
		Cluster: job.ClusterSpec{
			Platform:     sc.Platform,
			Nodes:        sc.Nodes,
			SlotsPerNode: sc.SlotsPerNode,
		},
		NoPreempt: sc.NoPreempt,
		Synth:     &job.SynthSpec{Jobs: sc.Jobs, Tenants: sc.Tenants},
	}
	reg := telemetry.New()
	rep, err := job.RunSim(w, job.NewSimBackend(), reg)
	if err != nil {
		return nil, err
	}
	oc := &outcome{spec: spec, sched: rep}
	oc.log("scenario %s seed=%d", spec.Name, spec.Seed)
	oc.log("cluster platform=%s nodes=%d slots_per_node=%d",
		sc.Platform, sc.Nodes, sc.SlotsPerNode)
	oc.log("job kind=sched jobs=%d tenants=%d no_preempt=%t",
		sc.Jobs, sc.Tenants, sc.NoPreempt)
	oc.eventLog = append(oc.eventLog, rep.EventLog...)
	oc.log("sched done=%d evicted=%d failed=%d preemptions=%d deadlocks=%d utilization=%.4f",
		rep.Done, rep.Evicted, rep.Failed, rep.Preemptions, rep.Deadlocks, rep.Utilization)
	for _, t := range rep.Tenants {
		oc.log("tenant %s jobs=%d done=%d evicted=%d preemptions=%d wait_mean=%s jct_mean=%s",
			t.Tenant, t.Jobs, t.Done, t.Evicted, t.Preemptions,
			time.Duration(t.WaitMeanNS), time.Duration(t.JCTMeanNS))
	}
	opts.logf("  sched: %d jobs, %d done, %d preemptions, utilization %.1f%%",
		rep.Jobs, rep.Done, rep.Preemptions, rep.Utilization*100)
	s := reg.Snapshot()
	m := telemetry.Merge([]telemetry.Snapshot{s})
	oc.merged = &m
	return oc, nil
}
