// Package modelpar implements model parallelism, the second distribution
// strategy the reproduced paper describes (Section II-B): "the model is
// split across all the processes[;] Send and Recv communication operations
// are used to implement distributed forward and backward pass."
//
// A model's graph is partitioned at clean cut points into contiguous
// stages balanced by forward FLOPs; each rank executes one stage, passing
// boundary activations forward and boundary gradients backward over the
// mpi transport. Micro-batching (GPipe-style) keeps multiple stages busy
// concurrently; gradients accumulate across micro-batches before the
// optimizer step, so results are independent of the micro-batch count for
// batch-norm-free models.
package modelpar

import (
	"fmt"

	"dnnperf/internal/graph"
	"dnnperf/internal/models"
	"dnnperf/internal/mpi"
	"dnnperf/internal/tensor"
)

// Plan is a staged partition of a model graph.
type Plan struct {
	// Bounds[s] is the last node ID of stage s; stage s covers node IDs
	// (Bounds[s-1], Bounds[s]] with Bounds[-1] == -1.
	Bounds []int
}

// Stages returns the stage count.
func (p Plan) Stages() int { return len(p.Bounds) }

// stageRange returns the (lo, hi] node-ID range of stage s.
func (p Plan) stageRange(s int) (lo, hi int) {
	lo = -1
	if s > 0 {
		lo = p.Bounds[s-1]
	}
	return lo, p.Bounds[s]
}

// Partition splits the model into `stages` contiguous stages at valid cut
// points, balancing cumulative forward FLOPs.
func Partition(m *models.Model, stages int) (Plan, error) {
	if stages < 1 {
		return Plan{}, fmt.Errorf("modelpar: stages %d < 1", stages)
	}
	if stages == 1 {
		return Plan{Bounds: []int{len(m.G.Nodes) - 1}}, nil
	}
	cuts := m.G.CutPoints()
	if len(cuts) < stages-1 {
		return Plan{}, fmt.Errorf("modelpar: model has %d cut points, need %d for %d stages",
			len(cuts), stages-1, stages)
	}
	// Cumulative forward FLOPs by node ID.
	prefix := make([]int64, len(m.G.Nodes))
	var total int64
	for i, n := range m.G.Nodes {
		if n.Kind == graph.KindOp {
			in := make([][]int, len(n.Inputs))
			for j, d := range n.Inputs {
				in[j] = d.Shape()
			}
			total += n.Op.FwdFLOPs(in, n.Shape())
		}
		prefix[i] = total
	}
	bounds := make([]int, 0, stages)
	cutIdx := 0
	for s := 1; s < stages; s++ {
		target := total * int64(s) / int64(stages)
		// Advance to the cut closest to the target without starving the
		// remaining stages of cut points.
		best := -1
		for i := cutIdx; i < len(cuts)-(stages-1-s); i++ {
			if best == -1 || absDiff(prefix[cuts[i]], target) < absDiff(prefix[cuts[best]], target) {
				best = i
			}
			if prefix[cuts[i]] > target && best != -1 {
				break
			}
		}
		if best == -1 {
			return Plan{}, fmt.Errorf("modelpar: could not place cut %d", s)
		}
		bounds = append(bounds, cuts[best])
		cutIdx = best + 1
	}
	bounds = append(bounds, len(m.G.Nodes)-1)
	return Plan{Bounds: bounds}, nil
}

func absDiff(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return b - a
}

// Message tags of the pipeline protocol.
const (
	tagActivation uint32 = 100
	tagGradient   uint32 = 101
)

// Worker executes one stage of a model-parallel pipeline on one rank.
type Worker struct {
	Model *models.Model
	Plan  Plan
	Comm  *mpi.Comm
	LR    float32

	exec     *graph.Executor
	lo, hi   int
	boundary *graph.Node // this stage's output node
	upstream *graph.Node // previous stage's boundary (nil for stage 0)
}

// NewWorker builds the stage worker for comm.Rank(). All ranks must use
// identically-built models (same seed) and the same plan.
func NewWorker(m *models.Model, plan Plan, comm *mpi.Comm, lr float32) (*Worker, error) {
	if comm.Size() != plan.Stages() {
		return nil, fmt.Errorf("modelpar: %d ranks for %d stages", comm.Size(), plan.Stages())
	}
	if lr <= 0 {
		lr = 0.05
	}
	s := comm.Rank()
	lo, hi := plan.stageRange(s)
	w := &Worker{
		Model: m, Plan: plan, Comm: comm, LR: lr,
		exec: graph.NewExecutor(m.G, tensor.Serial, 1),
		lo:   lo, hi: hi,
		boundary: m.G.Nodes[hi],
	}
	if s > 0 {
		w.upstream = m.G.Nodes[lo]
	}
	return w, nil
}

// StageParams returns the number of parameters owned by this stage.
func (w *Worker) StageParams() int64 {
	var n int64
	for _, v := range w.Model.G.Variables() {
		if v.ID > w.lo && v.ID <= w.hi {
			n += int64(tensor.NumElems(v.Shape()))
		}
	}
	return n
}

// Step runs one model-parallel training step over microbatches. Stage 0
// receives the input batches; the last stage receives labels and computes
// the loss. Gradients accumulate across micro-batches; every stage then
// applies SGD to its own variables. The mean loss is returned on the last
// rank (0 elsewhere).
func (w *Worker) Step(micro []MicroBatch) (float64, error) {
	if len(micro) == 0 {
		return 0, fmt.Errorf("modelpar: no micro-batches")
	}
	rank, size := w.Comm.Rank(), w.Comm.Size()
	w.Model.G.ZeroGrads()

	states := make([]*graph.ExecState, len(micro))
	var totalLoss float64

	// Forward sweep: stream micro-batches through the pipeline.
	for i, mb := range micro {
		presets := map[*graph.Node]*tensor.Tensor{}
		if rank == 0 {
			if mb.Images == nil {
				return 0, fmt.Errorf("modelpar: stage 0 needs images in micro-batch %d", i)
			}
			presets[w.Model.Input] = mb.Images
		} else {
			act, err := w.Comm.RecvFloats(rank-1, tagActivation)
			if err != nil {
				return 0, fmt.Errorf("modelpar: recv activation: %w", err)
			}
			presets[w.upstream] = tensor.FromSlice(act, w.upstream.Shape()...)
		}
		st, err := w.exec.ForwardRange(presets, w.lo, w.hi)
		if err != nil {
			return 0, err
		}
		states[i] = st
		if rank < size-1 {
			if err := w.Comm.SendFloats(rank+1, tagActivation, st.Value(w.boundary).Data()); err != nil {
				return 0, fmt.Errorf("modelpar: send activation: %w", err)
			}
		}
	}

	// Backward sweep (reverse micro-batch order keeps memory bounded in
	// real pipelines; here it keeps the protocol deadlock-free).
	for i := len(micro) - 1; i >= 0; i-- {
		st := states[i]
		var dy *tensor.Tensor
		if rank == size-1 {
			logits := st.Value(w.Model.Logits)
			loss, grad := tensor.CrossEntropyLoss(tensor.Serial, logits, micro[i].Labels)
			totalLoss += loss
			dy = grad
		} else {
			g, err := w.Comm.RecvFloats(rank+1, tagGradient)
			if err != nil {
				return 0, fmt.Errorf("modelpar: recv gradient: %w", err)
			}
			dy = tensor.FromSlice(g, w.boundary.Shape()...)
		}
		out, err := w.exec.BackwardRange(st, w.boundary, dy, w.lo)
		if err != nil {
			return 0, err
		}
		if rank > 0 {
			g, ok := out[w.upstream]
			if !ok {
				return 0, fmt.Errorf("modelpar: stage %d produced no boundary gradient", rank)
			}
			if err := w.Comm.SendFloats(rank-1, tagGradient, g.Data()); err != nil {
				return 0, fmt.Errorf("modelpar: send gradient: %w", err)
			}
		}
	}

	// Local SGD on this stage's parameters (gradients already accumulated
	// over all micro-batches; scale by 1/micro for the mean).
	inv := 1 / float32(len(micro))
	for _, v := range w.Model.G.Variables() {
		if v.ID > w.lo && v.ID <= w.hi && v.Grad != nil {
			tensor.AXPY(tensor.Serial, v.Value, -w.LR*inv, v.Grad)
		}
	}
	if rank == size-1 {
		return totalLoss / float64(len(micro)), nil
	}
	return 0, nil
}

// MicroBatch is one pipeline micro-batch: stage 0 consumes Images, the
// last stage consumes Labels.
type MicroBatch struct {
	Images *tensor.Tensor
	Labels []int
}
