package modelpar

import (
	"fmt"
	"testing"

	"dnnperf/internal/data"
	"dnnperf/internal/graph"
	"dnnperf/internal/models"
	"dnnperf/internal/mpi"
	"dnnperf/internal/tensor"
	"dnnperf/internal/train"
)

func TestCutPointsChainModel(t *testing.T) {
	m := models.TinyCNN(models.Config{Batch: 2, ImageSize: 16, Classes: 4, Seed: 1})
	cuts := m.G.CutPoints()
	if len(cuts) < 3 {
		t.Fatalf("TinyCNN should have several cut points, got %d", len(cuts))
	}
	// Every cut must be an op node and no edge may jump across it except
	// from the cut node itself.
	for _, c := range cuts {
		if m.G.Nodes[c].Kind != graph.KindOp {
			t.Fatalf("cut %d is not an op node", c)
		}
		for _, n := range m.G.Nodes {
			for _, dep := range n.Inputs {
				if dep.ID < c && n.ID > c {
					t.Fatalf("edge %d->%d crosses cut %d", dep.ID, n.ID, c)
				}
			}
		}
	}
}

func TestCutPointsResNetHasBlockBoundaries(t *testing.T) {
	m := models.ResNet50(models.Config{Batch: 1})
	cuts := m.G.CutPoints()
	// ResNet-50 has 16 residual blocks plus stem/head boundaries.
	if len(cuts) < 16 {
		t.Fatalf("ResNet-50 cut points = %d, want >= 16", len(cuts))
	}
}

func TestPartitionBalancesFLOPs(t *testing.T) {
	m := models.ResNet50(models.Config{Batch: 1})
	plan, err := Partition(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stages() != 4 {
		t.Fatalf("stages = %d", plan.Stages())
	}
	// Per-stage FLOPs within a reasonable factor of each other.
	flopsOf := func(lo, hi int) int64 {
		var f int64
		for id := lo + 1; id <= hi; id++ {
			n := m.G.Nodes[id]
			if n.Kind != graph.KindOp {
				continue
			}
			in := make([][]int, len(n.Inputs))
			for j, d := range n.Inputs {
				in[j] = d.Shape()
			}
			f += n.Op.FwdFLOPs(in, n.Shape())
		}
		return f
	}
	var minF, maxF int64
	for s := 0; s < 4; s++ {
		lo, hi := plan.stageRange(s)
		f := flopsOf(lo, hi)
		if s == 0 || f < minF {
			minF = f
		}
		if f > maxF {
			maxF = f
		}
	}
	if minF <= 0 || float64(maxF)/float64(minF) > 3 {
		t.Fatalf("stage imbalance %d..%d", minF, maxF)
	}
}

func TestPartitionValidation(t *testing.T) {
	m := models.TinyCNN(models.Config{Batch: 2, ImageSize: 16, Classes: 4})
	if _, err := Partition(m, 0); err == nil {
		t.Fatal("0 stages must error")
	}
	if _, err := Partition(m, 1000); err == nil {
		t.Fatal("more stages than cut points must error")
	}
	p, err := Partition(m, 1)
	if err != nil || p.Stages() != 1 {
		t.Fatalf("1-stage plan: %v %v", p, err)
	}
}

// runPipeline trains a TinyCNN pipeline across `stages` ranks for `steps`
// steps with the given micro-batch split and returns the final variables
// (gathered by stage ownership) and the last loss.
func runPipeline(t *testing.T, stages, steps, microPer int, batchPer int) ([]*tensor.Tensor, float64) {
	t.Helper()
	w, err := mpi.NewWorld(stages)
	if err != nil {
		t.Fatal(err)
	}
	ms := make([]*models.Model, stages)
	var lastLoss float64
	err = w.Run(func(c *mpi.Comm) error {
		m := models.TinyCNN(models.Config{Batch: batchPer, ImageSize: 16, Classes: 4, Seed: 11})
		ms[c.Rank()] = m
		plan, err := Partition(m, stages)
		if err != nil {
			return err
		}
		wk, err := NewWorker(m, plan, c, 0.05)
		if err != nil {
			return err
		}
		gen, err := data.NewLearnable(batchPer, 3, 16, 4, 21)
		if err != nil {
			return err
		}
		for s := 0; s < steps; s++ {
			var micro []MicroBatch
			b := gen.Next()
			for i := 0; i < microPer; i++ {
				micro = append(micro, MicroBatch{Images: b.Images, Labels: b.Labels})
			}
			// One micro-batch per step here: keep exactness.
			micro = micro[:1]
			loss, err := wk.Step(micro)
			if err != nil {
				return err
			}
			if c.Rank() == stages-1 {
				lastLoss = loss
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Gather variables from the owning stage.
	var out []*tensor.Tensor
	refPlan, _ := Partition(ms[0], stages)
	for _, v := range ms[0].G.Variables() {
		owner := 0
		for s := 0; s < stages; s++ {
			lo, hi := refPlan.stageRange(s)
			if v.ID > lo && v.ID <= hi {
				owner = s
			}
		}
		for _, ov := range ms[owner].G.Variables() {
			if ov.Name == v.Name {
				out = append(out, ov.Value)
			}
		}
	}
	return out, lastLoss
}

func TestPipelineMatchesSerialTraining(t *testing.T) {
	const batch, steps = 8, 3
	// Serial reference.
	ref := models.TinyCNN(models.Config{Batch: batch, ImageSize: 16, Classes: 4, Seed: 11})
	tr, err := train.New(train.Config{Model: ref, LR: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	gen, _ := data.NewLearnable(batch, 3, 16, 4, 21)
	var refLoss float64
	for s := 0; s < steps; s++ {
		st, err := tr.Step(gen.Next())
		if err != nil {
			t.Fatal(err)
		}
		refLoss = st.Loss
	}

	for _, stages := range []int{2, 3} {
		vars, loss := runPipeline(t, stages, steps, 1, batch)
		refVars := ref.G.Variables()
		if len(vars) != len(refVars) {
			t.Fatalf("stages=%d: %d vars vs %d", stages, len(vars), len(refVars))
		}
		for i, v := range vars {
			if d := v.MaxAbsDiff(refVars[i].Value); d > 1e-4 {
				t.Fatalf("stages=%d: variable %s differs from serial by %g", stages, refVars[i].Name, d)
			}
		}
		if d := loss - refLoss; d > 1e-4 || d < -1e-4 {
			t.Fatalf("stages=%d: loss %g vs serial %g", stages, loss, refLoss)
		}
	}
}

func TestPipelineMicroBatchesConverge(t *testing.T) {
	const stages = 2
	w, _ := mpi.NewWorld(stages)
	var losses []float64
	err := w.Run(func(c *mpi.Comm) error {
		m := models.TinyCNN(models.Config{Batch: 4, ImageSize: 16, Classes: 4, Seed: 3})
		plan, err := Partition(m, stages)
		if err != nil {
			return err
		}
		wk, err := NewWorker(m, plan, c, 0.08)
		if err != nil {
			return err
		}
		gen, err := data.NewLearnable(4, 3, 16, 4, 5)
		if err != nil {
			return err
		}
		for s := 0; s < 15; s++ {
			// Two micro-batches of 4 images each per step.
			micro := []MicroBatch{
				{Images: gen.Next().Images, Labels: gen.Next().Labels},
				{Images: gen.Next().Images, Labels: gen.Next().Labels},
			}
			b1, b2 := gen.Next(), gen.Next()
			micro = []MicroBatch{{Images: b1.Images, Labels: b1.Labels}, {Images: b2.Images, Labels: b2.Labels}}
			loss, err := wk.Step(micro)
			if err != nil {
				return err
			}
			if c.Rank() == stages-1 {
				losses = append(losses, loss)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != 15 {
		t.Fatalf("%d losses", len(losses))
	}
	first := (losses[0] + losses[1]) / 2
	last := (losses[13] + losses[14]) / 2
	if last >= first {
		t.Fatalf("pipeline training did not converge: %.3f -> %.3f", first, last)
	}
}

func TestWorkerValidation(t *testing.T) {
	m := models.TinyCNN(models.Config{Batch: 2, ImageSize: 16, Classes: 4})
	plan, _ := Partition(m, 2)
	w, _ := mpi.NewWorld(3) // wrong size
	if _, err := NewWorker(m, plan, w.Comm(0), 0.05); err == nil {
		t.Fatal("rank/stage mismatch must error")
	}
}

func TestStageParamsPartitionCompletely(t *testing.T) {
	m := models.TinyCNN(models.Config{Batch: 2, ImageSize: 16, Classes: 4, Seed: 1})
	plan, err := Partition(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := mpi.NewWorld(3)
	var total int64
	for r := 0; r < 3; r++ {
		wk, err := NewWorker(m, plan, w.Comm(r), 0.05)
		if err != nil {
			t.Fatal(err)
		}
		total += wk.StageParams()
	}
	if total != m.Params() {
		t.Fatalf("stage params %d != model params %d", total, m.Params())
	}
}

func TestStepErrors(t *testing.T) {
	m := models.TinyCNN(models.Config{Batch: 2, ImageSize: 16, Classes: 4})
	plan, _ := Partition(m, 1)
	w, _ := mpi.NewWorld(1)
	wk, err := NewWorker(m, plan, w.Comm(0), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wk.Step(nil); err == nil {
		t.Fatal("empty micro-batches must error")
	}
	if _, err := wk.Step([]MicroBatch{{}}); err == nil {
		t.Fatal("stage 0 without images must error")
	}
	_ = fmt.Sprintf("%v", plan)
}
