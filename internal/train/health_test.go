package train

import (
	"sync"
	"testing"
	"time"

	"dnnperf/internal/mpi"
	"dnnperf/internal/telemetry"
)

// watchHealth samples a Health until done, recording each distinct state in
// transition order.
func watchHealth(h *telemetry.Health, done <-chan struct{}) func() []string {
	var mu sync.Mutex
	var states []string
	stop := make(chan struct{})
	go func() {
		defer close(stop)
		for {
			state, _, _ := h.Get()
			mu.Lock()
			if len(states) == 0 || states[len(states)-1] != state {
				states = append(states, state)
			}
			mu.Unlock()
			select {
			case <-done:
				// One final sample so the terminal state is never missed.
				state, _, _ := h.Get()
				mu.Lock()
				if states[len(states)-1] != state {
					states = append(states, state)
				}
				mu.Unlock()
				return
			case <-time.After(100 * time.Microsecond):
			}
		}
	}()
	return func() []string {
		<-stop
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), states...)
	}
}

// TestSuperviseHealthTransitions: the supervisor drives the /healthz state
// machine through an elastic kill-and-recover — starting while
// bootstrapping, ok once training, recovering during the shrink, degraded
// after it — and Healthy() flips accordingly.
func TestSuperviseHealthTransitions(t *testing.T) {
	w, err := mpi.NewWorldOpts(3, mpi.WorldOptions{RecvTimeout: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	const steps, dieAfter = 8, 3

	health := telemetry.NewHealth()
	if health.Healthy() {
		t.Fatal("fresh Health must not be healthy (starting)")
	}
	done := make(chan struct{})
	collect := watchHealth(health, done)

	var wg sync.WaitGroup
	results := make([]*SupervisorResult, 2)
	errs := make([]error, 3)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := elasticConfig(w.Comm(r), steps, dir)
			if r == 0 {
				cfg.Health = health // rank 0 hosts the endpoint
			}
			results[r], errs[r] = Supervise(cfg)
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs[2] = runDoomedRank(t, w.Comm(2), 2, dieAfter)
	}()
	wg.Wait()
	close(done)

	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if results[0].Outcome != OutcomeRecovered {
		t.Fatalf("outcome %v, want recovered", results[0].Outcome)
	}

	states := collect()
	want := []string{telemetry.HealthStarting, telemetry.HealthOK,
		telemetry.HealthRecovering, telemetry.HealthDegraded}
	// The sampler may miss a brief state under load, but the observed
	// sequence must be a subsequence-preserving walk of the expected one:
	// every observed state appears in `want` order.
	wi := 0
	for _, s := range states {
		for wi < len(want) && want[wi] != s {
			wi++
		}
		if wi == len(want) {
			t.Fatalf("unexpected health walk %v (state %q out of order vs %v)", states, s, want)
		}
	}
	// The load-bearing edges must have been seen: ok before the failure,
	// recovering during it, degraded after.
	seen := map[string]bool{}
	for _, s := range states {
		seen[s] = true
	}
	for _, must := range []string{telemetry.HealthOK, telemetry.HealthRecovering, telemetry.HealthDegraded} {
		if !seen[must] {
			t.Errorf("health never reported %q (walk: %v)", must, states)
		}
	}

	// Terminal state after recovery is degraded-but-healthy: the job is
	// serving with fewer ranks.
	state, _, detail := health.Get()
	if state != telemetry.HealthDegraded {
		t.Errorf("final state %q, want degraded", state)
	}
	if !health.Healthy() {
		t.Error("degraded must remain healthy (HTTP 200)")
	}
	if detail["new_size"] != 2 {
		t.Errorf("degraded detail = %v, want new_size 2", detail)
	}

	// During recovery Healthy() must have been false at least at the
	// recovering sample (can't re-check now; assert via the recorded walk
	// plus the state mapping pinned in telemetry's own tests).
}

// TestSuperviseHealthCleanRun: without failures the walk is just
// starting -> ok; degraded and recovering never appear.
func TestSuperviseHealthCleanRun(t *testing.T) {
	w, err := mpi.NewWorldOpts(2, mpi.WorldOptions{RecvTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	health := telemetry.NewHealth()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := elasticConfig(w.Comm(r), 4, dir)
			if r == 0 {
				cfg.Health = health
			}
			_, errs[r] = Supervise(cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	state, _, detail := health.Get()
	if state != telemetry.HealthOK {
		t.Errorf("clean-run final state %q, want ok", state)
	}
	if detail["world"] != 2 {
		t.Errorf("detail = %v, want world 2", detail)
	}
}
