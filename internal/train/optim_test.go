package train

import (
	"bytes"
	"path/filepath"
	"testing"

	"dnnperf/internal/data"
	"dnnperf/internal/graph"
	"dnnperf/internal/models"
	"dnnperf/internal/tensor"
)

// quadGraph builds a 1-variable model whose loss landscape is easy to
// reason about: logits = x @ w with identity-ish input.
func quadGraph() (*models.Model, *graph.Node) {
	g := graph.New()
	x := g.Input("x", 1, 2)
	w := g.Variable("w", []int{2, 2}, graph.ConstInit(tensor.FromSlice([]float32{1, 0, 0, 1}, 2, 2)))
	b := g.Variable("b", []int{2}, graph.Zeros)
	logits := g.Apply(graph.DenseOp{}, "fc", x, w, b)
	return &models.Model{Name: "quad", G: g, Input: x, Logits: logits}, w
}

func TestNewOptimizerRegistry(t *testing.T) {
	for _, name := range []string{"", "sgd", "momentum", "lars"} {
		opt, err := NewOptimizer(name, 0.1)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if opt.Name() == "" {
			t.Fatalf("%q: empty name", name)
		}
	}
	if _, err := NewOptimizer("adamw", 0.1); err == nil {
		t.Fatal("unknown optimizer must error")
	}
}

func TestSGDStepDirection(t *testing.T) {
	m, w := quadGraph()
	w.Materialize()
	w.Grad.Fill(1)
	(&SGD{LR: 0.5}).Step(tensor.Serial, m.G)
	if w.Value.At(0, 0) != 0.5 || w.Value.At(0, 1) != -0.5 {
		t.Fatalf("SGD step wrong: %v", w.Value.Data())
	}
}

func TestSGDWeightDecayShrinks(t *testing.T) {
	m, w := quadGraph()
	w.Materialize()
	w.Grad.Zero()
	(&SGD{LR: 0.1, WeightDecay: 0.5}).Step(tensor.Serial, m.G)
	// w -= lr * wd * w => 1 - 0.05 = 0.95 on the diagonal
	if d := w.Value.At(0, 0) - 0.95; d > 1e-6 || d < -1e-6 {
		t.Fatalf("weight decay wrong: %v", w.Value.At(0, 0))
	}
}

func TestMomentumAccumulates(t *testing.T) {
	m, w := quadGraph()
	w.Materialize()
	opt := NewMomentum(0.1, 0.9)
	// Two identical gradient steps: the second moves farther (velocity).
	w.Grad.Fill(1)
	opt.Step(tensor.Serial, m.G)
	afterOne := w.Value.At(0, 0)
	move1 := 1 - afterOne
	w.Grad.Fill(1)
	opt.Step(tensor.Serial, m.G)
	move2 := afterOne - w.Value.At(0, 0)
	if move2 <= move1 {
		t.Fatalf("momentum must accelerate: %g then %g", move1, move2)
	}
}

func TestNesterovDiffersFromPlain(t *testing.T) {
	mA, wA := quadGraph()
	mB, wB := quadGraph()
	wA.Materialize()
	wB.Materialize()
	plain := NewMomentum(0.1, 0.9)
	nest := NewMomentum(0.1, 0.9)
	nest.Nesterov = true
	for i := 0; i < 3; i++ {
		wA.Grad.Fill(1)
		plain.Step(tensor.Serial, mA.G)
		wB.Grad.Fill(1)
		nest.Step(tensor.Serial, mB.G)
	}
	if wA.Value.MaxAbsDiff(wB.Value) == 0 {
		t.Fatal("Nesterov must differ from plain momentum")
	}
}

func TestLARSScalesByLayerNorm(t *testing.T) {
	m, w := quadGraph()
	w.Materialize()
	opt := NewLARS(1.0)
	w.Grad.Fill(100) // huge gradient: LARS should temper the step
	before := w.Value.Clone()
	opt.Step(tensor.Serial, m.G)
	step := before.MaxAbsDiff(w.Value)
	// Plain SGD at lr=1 would step 100; LARS scales by trust*|w|/|g|.
	if step > 1 {
		t.Fatalf("LARS step %g too large", step)
	}
	if step == 0 {
		t.Fatal("LARS must still move")
	}
}

func TestTrainingWithMomentumConverges(t *testing.T) {
	m := models.TinyCNN(models.Config{Batch: 8, ImageSize: 16, Classes: 4, Seed: 4})
	tr, err := New(Config{Model: m, IntraThreads: 2, LR: 0.05, Optimizer: NewMomentum(0.05, 0.9)})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	gen, err := data.NewLearnable(8, 3, 16, 4, 13)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := tr.Run(gen.Next, 25)
	if err != nil {
		t.Fatal(err)
	}
	if stats[len(stats)-1].Loss >= stats[0].Loss {
		t.Fatalf("momentum training did not converge: %.3f -> %.3f",
			stats[0].Loss, stats[len(stats)-1].Loss)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	m := models.TinyCNN(models.Config{Batch: 2, ImageSize: 16, Classes: 4, Seed: 6})
	for _, v := range m.G.Variables() {
		v.Materialize()
	}
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, m); err != nil {
		t.Fatal(err)
	}
	saved := make([]*tensor.Tensor, 0)
	for _, v := range m.G.Variables() {
		saved = append(saved, v.Value.Clone())
		v.Value.Fill(-7) // scramble
	}
	m2 := models.TinyCNN(models.Config{Batch: 2, ImageSize: 16, Classes: 4, Seed: 999})
	if err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), m2); err != nil {
		t.Fatal(err)
	}
	for i, v := range m2.G.Variables() {
		if v.Value.MaxAbsDiff(saved[i]) != 0 {
			t.Fatalf("variable %s not restored", v.Name)
		}
	}
}

func TestCheckpointDetectsCorruption(t *testing.T) {
	m := models.TinyCNN(models.Config{Batch: 2, ImageSize: 16, Classes: 4, Seed: 6})
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, m); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 0xff // flip a payload byte
	m2 := models.TinyCNN(models.Config{Batch: 2, ImageSize: 16, Classes: 4, Seed: 6})
	if err := LoadCheckpoint(bytes.NewReader(raw), m2); err == nil {
		t.Fatal("corruption must be detected")
	}
}

func TestCheckpointRejectsBadMagicAndShape(t *testing.T) {
	m := models.TinyCNN(models.Config{Batch: 2, ImageSize: 16, Classes: 4, Seed: 6})
	if err := LoadCheckpoint(bytes.NewReader([]byte("NOPE....")), m); err == nil {
		t.Fatal("bad magic must error")
	}
	// Save a 16px model, load into a model with different head: class count
	// changes the fc shapes.
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, m); err != nil {
		t.Fatal(err)
	}
	other := models.TinyCNN(models.Config{Batch: 2, ImageSize: 16, Classes: 7, Seed: 6})
	if err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("shape mismatch must error")
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	m := models.TinyCNN(models.Config{Batch: 2, ImageSize: 16, Classes: 4, Seed: 8})
	for _, v := range m.G.Variables() {
		v.Materialize()
	}
	if err := SaveCheckpointFile(path, m); err != nil {
		t.Fatal(err)
	}
	m2 := models.TinyCNN(models.Config{Batch: 2, ImageSize: 16, Classes: 4, Seed: 1})
	if err := LoadCheckpointFile(path, m2); err != nil {
		t.Fatal(err)
	}
	if m2.G.Variables()[0].Value.MaxAbsDiff(m.G.Variables()[0].Value) != 0 {
		t.Fatal("file round trip failed")
	}
	if err := LoadCheckpointFile(filepath.Join(dir, "missing.ckpt"), m2); err == nil {
		t.Fatal("missing file must error")
	}
}

// Checkpoint + resume must continue training seamlessly.
func TestCheckpointResumeTraining(t *testing.T) {
	gen, _ := data.NewLearnable(8, 3, 16, 4, 17)
	batches := make([]data.Batch, 10)
	for i := range batches {
		batches[i] = gen.Next()
	}

	// Continuous run.
	mA := models.TinyCNN(models.Config{Batch: 8, ImageSize: 16, Classes: 4, Seed: 2})
	trA, _ := New(Config{Model: mA, LR: 0.05})
	defer trA.Close()
	for _, b := range batches {
		if _, err := trA.Step(b); err != nil {
			t.Fatal(err)
		}
	}

	// Split run with a checkpoint in the middle.
	mB := models.TinyCNN(models.Config{Batch: 8, ImageSize: 16, Classes: 4, Seed: 2})
	trB, _ := New(Config{Model: mB, LR: 0.05})
	for _, b := range batches[:5] {
		if _, err := trB.Step(b); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, mB); err != nil {
		t.Fatal(err)
	}
	trB.Close()

	mC := models.TinyCNN(models.Config{Batch: 8, ImageSize: 16, Classes: 4, Seed: 777})
	if err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), mC); err != nil {
		t.Fatal(err)
	}
	trC, _ := New(Config{Model: mC, LR: 0.05})
	defer trC.Close()
	for _, b := range batches[5:] {
		if _, err := trC.Step(b); err != nil {
			t.Fatal(err)
		}
	}

	for i, v := range mC.G.Variables() {
		if d := v.Value.MaxAbsDiff(mA.G.Variables()[i].Value); d > 1e-5 {
			t.Fatalf("resume drifted on %s by %g", v.Name, d)
		}
	}
}
