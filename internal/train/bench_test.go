package train

import (
	"testing"
	"time"

	"dnnperf/internal/data"
	"dnnperf/internal/graph"
	"dnnperf/internal/models"
	"dnnperf/internal/telemetry"
	"dnnperf/internal/tensor"
)

// resNetBlockModel builds one residual block — conv/bn/relu ×2 with a skip
// connection — plus gap and a dense head: the unit of work the paper's
// per-layer ResNet profiles are made of.
func resNetBlockModel() *models.Model {
	rng := tensor.NewRNG(42)
	g := graph.New()
	x := g.Input("x", 4, 8, 8, 8)
	spec := tensor.ConvSpec{KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	k1 := g.Variable("k1", []int{8, 8, 3, 3}, graph.ConstInit(rng.HeInit(8*3*3, 8, 8, 3, 3)))
	c1 := g.Apply(&graph.Conv2DOp{Spec: spec}, "conv1", x, k1)
	g1 := g.Variable("gamma1", []int{8}, graph.OnesInit)
	b1 := g.Variable("beta1", []int{8}, graph.Zeros)
	bn1 := g.Apply(&graph.BatchNormOp{Eps: 1e-5}, "bn1", c1, g1, b1)
	r1 := g.Apply(graph.ReLUOp{}, "relu1", bn1)
	k2 := g.Variable("k2", []int{8, 8, 3, 3}, graph.ConstInit(rng.HeInit(8*3*3, 8, 8, 3, 3)))
	c2 := g.Apply(&graph.Conv2DOp{Spec: spec}, "conv2", r1, k2)
	g2 := g.Variable("gamma2", []int{8}, graph.OnesInit)
	b2 := g.Variable("beta2", []int{8}, graph.Zeros)
	bn2 := g.Apply(&graph.BatchNormOp{Eps: 1e-5}, "bn2", c2, g2, b2)
	sum := g.Apply(graph.AddOp{}, "add", bn2, x)
	r2 := g.Apply(graph.ReLUOp{}, "relu2", sum)
	gap := g.Apply(graph.GlobalAvgPoolOp{}, "gap", r2)
	w := g.Variable("w", []int{8, 10}, graph.ConstInit(rng.HeInit(8, 8, 10)))
	bias := g.Variable("b", []int{10}, graph.Zeros)
	logits := g.Apply(graph.DenseOp{}, "fc", gap, w, bias)
	return &models.Model{Name: "resnet-block", G: g, Input: x, Logits: logits}
}

// BenchmarkResNetBlockStep measures a full training step (forward, loss,
// backward, SGD update) on one residual block. allocs/op is the headline:
// with the arena recycling activations, gradients and scratch across steps,
// the steady state allocates only per-step bookkeeping, not tensors. The
// trainer runs with a live telemetry registry attached: metric handles are
// pre-registered in New, so enabling metrics must not change allocs/op.
func BenchmarkResNetBlockStep(b *testing.B) {
	tr, err := New(Config{
		Model: resNetBlockModel(), IntraThreads: 1, LR: 0.01,
		Telemetry: telemetry.New(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	rng := tensor.NewRNG(7)
	batch := data.Batch{Images: rng.Uniform(-1, 1, 4, 8, 8, 8), Labels: []int{1, 3, 5, 7}}
	if _, err := tr.Step(batch); err != nil { // warm the arena
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Step(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(4*b.N)/b.Elapsed().Seconds(), "img/s")
}

// TestResNetBlockStepAllocsWithPublisher pins the zero-allocation contract
// under live observability: a training step with a telemetry registry AND a
// Publisher attached still allocates only the per-step stats slot. The
// publisher snapshots on its own goroutine, so its presence must not add a
// single allocation to the hot path.
func TestResNetBlockStepAllocsWithPublisher(t *testing.T) {
	reg := telemetry.New()
	tr, err := New(Config{
		Model: resNetBlockModel(), IntraThreads: 1, LR: 0.01,
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	pub := telemetry.NewPublisher(reg, nil, func([]byte) error { return nil },
		telemetry.PublisherOptions{Interval: time.Hour})
	defer pub.Stop()

	rng := tensor.NewRNG(7)
	batch := data.Batch{Images: rng.Uniform(-1, 1, 4, 8, 8, 8), Labels: []int{1, 3, 5, 7}}
	// Warm the arena and ride out the per-step stats slice's capacity
	// doubling, so the measurement sees only the steady state.
	for i := 0; i < 40; i++ {
		if _, err := tr.Step(batch); err != nil {
			t.Fatal(err)
		}
	}
	// A completed publish must not perturb the step path's steady state
	// either.
	if err := pub.Publish(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := tr.Step(batch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Errorf("step allocates %.1f objects/op with publisher attached, want <= 1", allocs)
	}
}
