// Package train is the functional training loop: real SGD over the graph
// engine, optionally data-parallel through the Horovod engine and MPI
// runtime. It is the executable counterpart of the timing layer — the same
// SP/MP/threading concepts, actually computing gradients.
package train

import (
	"fmt"
	"sync/atomic"
	"time"

	"dnnperf/internal/data"
	"dnnperf/internal/graph"
	"dnnperf/internal/horovod"
	"dnnperf/internal/models"
	"dnnperf/internal/telemetry"
	"dnnperf/internal/tensor"
)

// Config drives a functional training run on one rank.
type Config struct {
	Model        *models.Model
	IntraThreads int // intra-op pool size (0 = 1)
	InterThreads int // inter-op executor width (0 = 1)
	LR           float32
	// Optimizer applies the parameter update; nil selects plain SGD at LR.
	Optimizer Optimizer
	// Engine, if non-nil, makes the run data parallel: gradients are
	// submitted for allreduce the moment they are ready (Horovod overlap)
	// and averaged across ranks before the update.
	Engine *horovod.Engine
	Rank   int
	// Telemetry, if set, exports step counters and gauges (train.steps,
	// train.images, train.loss, train.accuracy, train.step_ns). Handles are
	// pre-registered in New, so Step stays allocation-free.
	Telemetry *telemetry.Registry
	// Tracer, if set, records step/forward/backward/allreduce_wait/optimizer
	// phases as spans, and hands per-op tracing to the executor.
	Tracer *telemetry.Tracer
}

// trainMetrics are the trainer's pre-registered telemetry handles.
type trainMetrics struct {
	steps    *telemetry.Counter
	images   *telemetry.Counter
	loss     *telemetry.Gauge
	accuracy *telemetry.Gauge
	stepNS   *telemetry.Histogram
}

func newTrainMetrics(reg *telemetry.Registry) *trainMetrics {
	return &trainMetrics{
		steps:    reg.Counter("train.steps"),
		images:   reg.Counter("train.images"),
		loss:     reg.Gauge("train.loss"),
		accuracy: reg.Gauge("train.accuracy"),
		stepNS:   reg.Histogram("train.step_ns", telemetry.DurationBuckets),
	}
}

// StepStats reports one training step.
type StepStats struct {
	Loss        float64
	Accuracy    float64
	Images      int
	Duration    time.Duration
	GradTensors int
	// CommWait is the time this step spent blocked on gradient allreduces
	// after backward finished — the real-path analogue of the simulator's
	// "exposed communication". In lock-step data parallelism the wall
	// Duration equalizes across ranks (everyone waits for the slowest), so
	// Duration-CommWait is the per-rank compute signal straggler detection
	// needs.
	CommWait time.Duration
}

// Trainer owns the executor and optimizer state for a model.
type Trainer struct {
	cfg    Config
	exec   *graph.Executor
	intra  *tensor.Pool
	met    *trainMetrics
	tracer *telemetry.Tracer
	step   int
	feeds  map[*graph.Node]*tensor.Tensor // reused across steps
}

// New constructs a trainer. The caller keeps ownership of cfg.Engine.
func New(cfg Config) (*Trainer, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("train: nil model")
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.05
	}
	if cfg.IntraThreads < 1 {
		cfg.IntraThreads = 1
	}
	if cfg.InterThreads < 1 {
		cfg.InterThreads = 1
	}
	if cfg.Optimizer == nil {
		cfg.Optimizer = &SGD{LR: cfg.LR}
	}
	intra := tensor.NewPool(cfg.IntraThreads)
	ex := graph.NewExecutor(cfg.Model.G, intra, cfg.InterThreads)
	ex.Tracer = cfg.Tracer
	// Recycle activations, gradients and kernel scratch across steps:
	// steady-state Step calls are then (nearly) allocation-free.
	ex.UseArena(tensor.NewArena())
	feeds := make(map[*graph.Node]*tensor.Tensor, 1)
	return &Trainer{
		cfg:    cfg,
		exec:   ex,
		intra:  intra,
		met:    newTrainMetrics(cfg.Telemetry),
		tracer: cfg.Tracer,
		feeds:  feeds,
	}, nil
}

// Close releases the trainer's worker pool.
func (t *Trainer) Close() { t.intra.Close() }

// SetProfile attaches an op-level time profile to the trainer's executor;
// pass nil to stop profiling.
func (t *Trainer) SetProfile(p *graph.Profile) { t.exec.Prof = p }

// Step runs one forward/backward/update on a batch and returns statistics.
// With an Engine configured, each variable's gradient is submitted to
// Horovod as soon as its backward completes, and the update waits for all
// reductions — the overlap structure the paper profiles.
func (t *Trainer) Step(b data.Batch) (StepStats, error) {
	start := time.Now()
	m := t.cfg.Model
	t.step++
	if t.cfg.Engine != nil {
		// Collectives this step submits carry the step number in their
		// causal trace context.
		t.cfg.Engine.SetStep(int64(t.step))
	}
	stepSpan := t.tracer.Begin("train.step", "train", 0)

	// Gradient-readiness plumbing: hook fires per variable.
	type doneMsg struct {
		v   *graph.Node
		err error
	}
	var pending atomic.Int32
	var doneCh chan doneMsg
	if t.cfg.Engine != nil {
		doneCh = make(chan doneMsg, len(m.G.Variables()))
		t.exec.GradHook = func(v *graph.Node) {
			// Stable names across steps (as real frameworks use) let the
			// engine's response cache announce by bitset after step one.
			// Step serialization guarantees no in-flight duplicates.
			name := v.Name
			pending.Add(1)
			err := t.cfg.Engine.AllreduceAsync(name, v.Grad.Data(), func(err error) {
				doneCh <- doneMsg{v: v, err: err}
			})
			if err != nil {
				// Submission failed: complete it locally so the wait below
				// still sees exactly one message per submission.
				doneCh <- doneMsg{v: v, err: err}
			}
		}
	}

	m.G.ZeroGrads()
	t.feeds[m.Input] = b.Images
	fwdSpan := t.tracer.Begin("train.forward", "train", 0)
	st, err := t.exec.Forward(t.feeds)
	fwdSpan.End()
	if err != nil {
		return StepStats{}, err
	}
	logits := st.Value(m.Logits)
	// KernelPool carries the executor's arena, so the softmax intermediate
	// and the loss gradient are recycled like every other step tensor.
	loss, grad := tensor.CrossEntropyLoss(t.exec.KernelPool(), logits, b.Labels)
	correct := 0
	for i, lbl := range b.Labels {
		if logits.ArgMaxRow(i) == lbl {
			correct++
		}
	}
	bwdSpan := t.tracer.Begin("train.backward", "train", 0)
	if err := t.exec.Backward(st, m.Logits, grad); err != nil {
		return StepStats{}, err
	}
	bwdSpan.End()

	grads := len(m.G.Variables())
	var commWait time.Duration
	if t.cfg.Engine != nil {
		// Backward has returned, so every hook has fired and the count is
		// final; wait for all reductions to land.
		waitSpan := t.tracer.Begin("train.allreduce_wait", "comm", 0)
		waitStart := time.Now()
		n := int(pending.Load())
		var firstErr error
		for i := 0; i < n; i++ {
			msg := <-doneCh
			if msg.err != nil && firstErr == nil {
				firstErr = msg.err
			}
		}
		commWait = time.Since(waitStart)
		waitSpan.End()
		t.exec.GradHook = nil
		if firstErr != nil {
			return StepStats{}, fmt.Errorf("train: allreduce: %w", firstErr)
		}
		grads = n
	}

	optSpan := t.tracer.Begin("train.optimizer", "train", 0)
	t.cfg.Optimizer.Step(t.intra, m.G)
	optSpan.End()

	// The loss gradient (the backward seed, caller-owned) and the remaining
	// execution state go back to the arena for the next step.
	t.exec.Arena().Put(grad)
	st.Release()

	stepSpan.End()
	n := len(b.Labels)
	dur := time.Since(start)
	t.met.steps.Inc()
	t.met.images.Add(int64(n))
	t.met.loss.Set(loss)
	t.met.accuracy.Set(float64(correct) / float64(n))
	t.met.stepNS.Observe(int64(dur))
	return StepStats{
		Loss:        loss,
		Accuracy:    float64(correct) / float64(n),
		Images:      n,
		Duration:    dur,
		GradTensors: grads,
		CommWait:    commWait,
	}, nil
}

// Run trains for steps batches from gen and returns per-step statistics.
func (t *Trainer) Run(gen func() data.Batch, steps int) ([]StepStats, error) {
	out := make([]StepStats, 0, steps)
	for i := 0; i < steps; i++ {
		s, err := t.Step(gen())
		if err != nil {
			return out, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Throughput summarizes images/second over a slice of steps, skipping the
// first (warm-up) step when there are at least two, mirroring benchmark
// practice.
func Throughput(stats []StepStats) float64 {
	if len(stats) == 0 {
		return 0
	}
	s := stats
	if len(s) > 1 {
		s = s[1:]
	}
	var imgs int
	var dur time.Duration
	for _, st := range s {
		imgs += st.Images
		dur += st.Duration
	}
	if dur == 0 {
		return 0
	}
	return float64(imgs) / dur.Seconds()
}
