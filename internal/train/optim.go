package train

import (
	"fmt"
	"math"
	"sort"

	"dnnperf/internal/graph"
	"dnnperf/internal/tensor"
)

// Optimizer applies one parameter update from accumulated gradients.
type Optimizer interface {
	// Step updates every variable of g from its Grad buffer.
	Step(pool *tensor.Pool, g *graph.Graph)
	// Name identifies the optimizer in logs.
	Name() string
}

// StatefulOptimizer is implemented by optimizers that carry per-variable
// state (velocity buffers) a checkpoint must capture for a bit-exact
// resume.
type StatefulOptimizer interface {
	// ExportState returns the optimizer's per-variable buffers in a
	// deterministic order. The tensors are the live buffers, not copies:
	// serialize them before the next Step.
	ExportState() []StateSlot
	// ImportState replaces the optimizer's buffers from slots, resolving
	// variables by name in g.
	ImportState(g *graph.Graph, slots []StateSlot) error
}

// exportVelocity flattens a velocity map into named slots, sorted by
// variable name so the on-disk order is deterministic.
func exportVelocity(vel map[*graph.Node]*tensor.Tensor, slot string) []StateSlot {
	out := make([]StateSlot, 0, len(vel))
	for v, t := range vel {
		out = append(out, StateSlot{Var: v.Name, Name: slot, Data: t})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Var < out[j].Var })
	return out
}

// importVelocity rebuilds a velocity map from checkpoint slots.
func importVelocity(g *graph.Graph, vel map[*graph.Node]*tensor.Tensor, slot string, slots []StateSlot) error {
	byName := make(map[string]*graph.Node)
	for _, v := range g.Variables() {
		byName[v.Name] = v
	}
	for _, s := range slots {
		if s.Name != slot {
			return fmt.Errorf("train: unexpected optimizer slot %q for %q (want %q)", s.Name, s.Var, slot)
		}
		v, ok := byName[s.Var]
		if !ok {
			return fmt.Errorf("train: optimizer slot for unknown variable %q", s.Var)
		}
		v.Materialize()
		if !tensor.ShapeEq(v.Value.Shape(), s.Data.Shape()) {
			return fmt.Errorf("train: slot %q/%q shape %v, variable is %v",
				s.Var, s.Name, s.Data.Shape(), v.Value.Shape())
		}
		t := tensor.New(s.Data.Shape()...)
		copy(t.Data(), s.Data.Data())
		vel[v] = t
	}
	return nil
}

// SGD is plain stochastic gradient descent with optional L2 weight decay.
type SGD struct {
	LR          float32
	WeightDecay float32
}

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

// Step implements Optimizer.
func (s *SGD) Step(pool *tensor.Pool, g *graph.Graph) {
	for _, v := range g.Variables() {
		if v.Grad == nil {
			continue
		}
		if s.WeightDecay > 0 {
			tensor.AXPY(pool, v.Grad, s.WeightDecay, v.Value)
		}
		tensor.AXPY(pool, v.Value, -s.LR, v.Grad)
	}
}

// Momentum is SGD with (optionally Nesterov) momentum — the optimizer the
// paper's tf_cnn_benchmarks runs use.
type Momentum struct {
	LR          float32
	Mu          float32 // momentum coefficient, typically 0.9
	Nesterov    bool
	WeightDecay float32

	velocity map[*graph.Node]*tensor.Tensor
}

// NewMomentum constructs a momentum optimizer (mu defaults to 0.9).
func NewMomentum(lr, mu float32) *Momentum {
	if mu == 0 {
		mu = 0.9
	}
	return &Momentum{LR: lr, Mu: mu, velocity: make(map[*graph.Node]*tensor.Tensor)}
}

// Name implements Optimizer.
func (m *Momentum) Name() string { return "momentum" }

// Step implements Optimizer.
func (m *Momentum) Step(pool *tensor.Pool, g *graph.Graph) {
	if m.velocity == nil {
		m.velocity = make(map[*graph.Node]*tensor.Tensor)
	}
	for _, v := range g.Variables() {
		if v.Grad == nil {
			continue
		}
		if m.WeightDecay > 0 {
			tensor.AXPY(pool, v.Grad, m.WeightDecay, v.Value)
		}
		vel := m.velocity[v]
		if vel == nil {
			vel = tensor.New(v.Value.Shape()...)
			m.velocity[v] = vel
		}
		// vel = mu*vel + grad
		vd, gd := vel.Data(), v.Grad.Data()
		mu := m.Mu
		pool.Run(len(vd), 8192, func(s, e int) {
			for i := s; i < e; i++ {
				vd[i] = mu*vd[i] + gd[i]
			}
		})
		if m.Nesterov {
			// w -= lr * (grad + mu*vel)
			lr, muv := m.LR, m.Mu
			wd := v.Value.Data()
			pool.Run(len(wd), 8192, func(s, e int) {
				for i := s; i < e; i++ {
					wd[i] -= lr * (gd[i] + muv*vd[i])
				}
			})
		} else {
			tensor.AXPY(pool, v.Value, -m.LR, vel)
		}
	}
}

// ExportState implements StatefulOptimizer.
func (m *Momentum) ExportState() []StateSlot { return exportVelocity(m.velocity, "velocity") }

// ImportState implements StatefulOptimizer.
func (m *Momentum) ImportState(g *graph.Graph, slots []StateSlot) error {
	if m.velocity == nil {
		m.velocity = make(map[*graph.Node]*tensor.Tensor)
	}
	return importVelocity(g, m.velocity, "velocity", slots)
}

// LARS is layer-wise adaptive rate scaling (You et al.), the technique
// behind the large-batch training regimes the paper cites ([22], [25]) as
// the accuracy-preserving route to the big global batches that multi-node
// CPU training produces.
type LARS struct {
	LR          float32
	Mu          float32
	Trust       float32 // trust coefficient eta, typically 1e-3..1e-2
	WeightDecay float32

	velocity map[*graph.Node]*tensor.Tensor
}

// NewLARS constructs a LARS optimizer with sensible defaults.
func NewLARS(lr float32) *LARS {
	return &LARS{LR: lr, Mu: 0.9, Trust: 0.001, velocity: make(map[*graph.Node]*tensor.Tensor)}
}

// Name implements Optimizer.
func (l *LARS) Name() string { return "lars" }

// Step implements Optimizer.
func (l *LARS) Step(pool *tensor.Pool, g *graph.Graph) {
	if l.velocity == nil {
		l.velocity = make(map[*graph.Node]*tensor.Tensor)
	}
	for _, v := range g.Variables() {
		if v.Grad == nil {
			continue
		}
		wNorm := v.Value.L2Norm()
		gNorm := v.Grad.L2Norm()
		localLR := l.LR
		if wNorm > 0 && gNorm > 0 {
			ratio := float64(l.Trust) * wNorm / (gNorm + float64(l.WeightDecay)*wNorm)
			localLR = l.LR * float32(math.Min(ratio, 10))
		}
		if l.WeightDecay > 0 {
			tensor.AXPY(pool, v.Grad, l.WeightDecay, v.Value)
		}
		vel := l.velocity[v]
		if vel == nil {
			vel = tensor.New(v.Value.Shape()...)
			l.velocity[v] = vel
		}
		vd, gd := vel.Data(), v.Grad.Data()
		mu := l.Mu
		pool.Run(len(vd), 8192, func(s, e int) {
			for i := s; i < e; i++ {
				vd[i] = mu*vd[i] + localLR*gd[i]
			}
		})
		tensor.AXPY(pool, v.Value, -1, vel)
	}
}

// ExportState implements StatefulOptimizer.
func (l *LARS) ExportState() []StateSlot { return exportVelocity(l.velocity, "velocity") }

// ImportState implements StatefulOptimizer.
func (l *LARS) ImportState(g *graph.Graph, slots []StateSlot) error {
	if l.velocity == nil {
		l.velocity = make(map[*graph.Node]*tensor.Tensor)
	}
	return importVelocity(g, l.velocity, "velocity", slots)
}

// NewOptimizer constructs an optimizer by name ("sgd", "momentum", "lars").
func NewOptimizer(name string, lr float32) (Optimizer, error) {
	switch name {
	case "", "sgd":
		return &SGD{LR: lr}, nil
	case "momentum":
		return NewMomentum(lr, 0.9), nil
	case "lars":
		return NewLARS(lr), nil
	default:
		return nil, fmt.Errorf("train: unknown optimizer %q", name)
	}
}
