package train

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dnnperf/internal/data"
	"dnnperf/internal/horovod"
	"dnnperf/internal/models"
	"dnnperf/internal/mpi"
)

// elasticFixtures returns the deterministic factories a supervised elastic
// run needs: same-seed models, per-size momentum optimizers, and per-rank
// generators repositioned to a resume step by burning batches.
func elasticFixtures(batch int) (func() *models.Model, func(int) Optimizer, func(rank, size int, startStep int64) (func() data.Batch, error)) {
	newModel := func() *models.Model { return tinyModel(13, batch) }
	newOpt := func(worldSize int) Optimizer { return &Momentum{LR: 0.05, Mu: 0.9} }
	newGen := func(rank, size int, startStep int64) (func() data.Batch, error) {
		gen, err := data.NewLearnable(batch, 3, 16, 4, data.Shard(97, rank))
		if err != nil {
			return nil, err
		}
		for i := int64(0); i < startStep; i++ {
			gen.Next()
		}
		return gen.Next, nil
	}
	return newModel, newOpt, newGen
}

func elasticConfig(comm *mpi.Comm, steps int, ckptDir string) SupervisorConfig {
	newModel, newOpt, newGen := elasticFixtures(4)
	return SupervisorConfig{
		Comm:         comm,
		Engine:       horovod.Config{CycleTime: 300 * time.Microsecond, Average: true},
		NewModel:     newModel,
		NewOptimizer: newOpt,
		NewGen:       newGen,
		Steps:        steps,
		CkptDir:      ckptDir,
		CkptEvery:    2,
		KeepCkpts:    -1, // these tests inspect the full checkpoint history
	}
}

// runDoomedRank trains dieSteps steps as a normal (unsupervised) member of
// the job, then dies abruptly.
func runDoomedRank(t *testing.T, comm *mpi.Comm, rank, dieSteps int) error {
	t.Helper()
	// Join the supervised ranks' bootstrap restore broadcast (the checkpoint
	// directory is empty, so the blob is empty: fresh start).
	if _, err := comm.BcastBytes(nil, 0); err != nil {
		return err
	}
	eng := horovod.NewEngine(comm, horovod.Config{CycleTime: 300 * time.Microsecond, Average: true})
	newModel, newOpt, newGen := elasticFixtures(4)
	tr, err := New(Config{Model: newModel(), Optimizer: newOpt(comm.Size()), Engine: eng, Rank: rank})
	if err != nil {
		return err
	}
	defer tr.Close()
	gen, err := newGen(rank, comm.Size(), 0)
	if err != nil {
		return err
	}
	if _, err := tr.Run(gen, dieSteps); err != nil {
		return err
	}
	comm.Abort() // die without a goodbye: the crash the survivors must absorb
	return nil
}

// TestSuperviseCleanRun: no failures — the supervised loop is just a
// training loop with periodic checkpoints, ending OutcomeClean.
func TestSuperviseCleanRun(t *testing.T) {
	w, err := mpi.NewWorldOpts(2, mpi.WorldOptions{RecvTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	const steps = 6

	var wg sync.WaitGroup
	results := make([]*SupervisorResult, 2)
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r], errs[r] = Supervise(elasticConfig(w.Comm(r), steps, dir))
		}(r)
	}
	wg.Wait()
	for r := 0; r < 2; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d: %v", r, errs[r])
		}
		res := results[r]
		if res.Outcome != OutcomeClean {
			t.Fatalf("rank %d: outcome %v, want clean", r, res.Outcome)
		}
		if res.FinalStep != steps || len(res.Steps) != steps {
			t.Fatalf("rank %d: final step %d (%d stats), want %d", r, res.FinalStep, len(res.Steps), steps)
		}
		if len(res.Recoveries) != 0 {
			t.Fatalf("rank %d: unexpected recoveries %v", r, res.Recoveries)
		}
	}
	// The leader checkpointed at steps 2, 4, 6.
	for _, step := range []int64{2, 4, 6} {
		p := filepath.Join(dir, ckptFileName(step))
		m := tinyModel(13, 4)
		st, err := LoadTrainingCheckpointFile(p, m)
		if err != nil {
			t.Fatalf("checkpoint %s: %v", p, err)
		}
		if st.Step != step {
			t.Fatalf("checkpoint %s records step %d", p, st.Step)
		}
	}
	// Loss fell over the run.
	ls := results[0].Steps
	if ls[len(ls)-1].Loss >= ls[0].Loss {
		t.Fatalf("loss did not fall: %.3f -> %.3f", ls[0].Loss, ls[len(ls)-1].Loss)
	}
}

// TestSuperviseRecoversFromRankDeath: a 3-rank job loses rank 2 mid-run;
// the survivors shrink to 2 ranks, roll back to the last checkpoint, and
// complete the full step budget.
func TestSuperviseRecoversFromRankDeath(t *testing.T) {
	w, err := mpi.NewWorldOpts(3, mpi.WorldOptions{RecvTimeout: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	const steps, dieAfter = 8, 3

	var wg sync.WaitGroup
	results := make([]*SupervisorResult, 2)
	errs := make([]error, 3)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r], errs[r] = Supervise(elasticConfig(w.Comm(r), steps, dir))
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs[2] = runDoomedRank(t, w.Comm(2), 2, dieAfter)
	}()
	wg.Wait()

	if errs[2] != nil {
		t.Fatalf("doomed rank failed before its death: %v", errs[2])
	}
	for r := 0; r < 2; r++ {
		if errs[r] != nil {
			t.Fatalf("survivor %d: %v", r, errs[r])
		}
		res := results[r]
		if res.Outcome != OutcomeRecovered {
			t.Fatalf("survivor %d: outcome %v, want recovered", r, res.Outcome)
		}
		if res.FinalStep != steps || len(res.Steps) != steps {
			t.Fatalf("survivor %d: final step %d (%d stats), want %d",
				r, res.FinalStep, len(res.Steps), steps)
		}
		if len(res.Recoveries) != 1 {
			t.Fatalf("survivor %d: %d recoveries, want 1", r, len(res.Recoveries))
		}
		ev := res.Recoveries[0]
		if ev.OldSize != 3 || ev.NewSize != 2 {
			t.Fatalf("survivor %d: shrink %d -> %d, want 3 -> 2", r, ev.OldSize, ev.NewSize)
		}
		if len(ev.FailedRanks) != 1 || ev.FailedRanks[0] != 2 {
			t.Fatalf("survivor %d: failed ranks %v, want [2]", r, ev.FailedRanks)
		}
		if ev.ResumeStep%2 != 0 {
			t.Fatalf("survivor %d: resume step %d is not a checkpoint step", r, ev.ResumeStep)
		}
		if ev.Latency <= 0 {
			t.Fatalf("survivor %d: zero recovery latency", r)
		}
		if res.WorldSize != 2 {
			t.Fatalf("survivor %d: final world size %d, want 2", r, res.WorldSize)
		}
		if res.EngineStats.Restarts != 1 {
			t.Fatalf("survivor %d: engine restarts %d, want 1", r, res.EngineStats.Restarts)
		}
	}
}

// TestRecoveredTrajectoryMatchesCheckpointRun is the recovery-correctness
// guarantee: the steps a survivor executes after recovery are bit-identical
// to an uninterrupted single-process run restored from the same checkpoint
// file. A 2-rank job loses rank 1; the survivor finishes alone (size 1), so
// the reference run is an engineless trainer restored from the resume
// checkpoint with the survivor's shard.
func TestRecoveredTrajectoryMatchesCheckpointRun(t *testing.T) {
	w, err := mpi.NewWorldOpts(2, mpi.WorldOptions{RecvTimeout: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	const steps, dieAfter = 8, 3

	var wg sync.WaitGroup
	var res *SupervisorResult
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		// A 2->1 shrink leaves exactly half the world: the quorum rule would
		// park the survivor, but this test is about trajectory correctness.
		cfg := elasticConfig(w.Comm(0), steps, dir)
		cfg.AllowMinority = true
		res, errs[0] = Supervise(cfg)
	}()
	go func() {
		defer wg.Done()
		errs[1] = runDoomedRank(t, w.Comm(1), 1, dieAfter)
	}()
	wg.Wait()
	if errs[1] != nil {
		t.Fatalf("doomed rank: %v", errs[1])
	}
	if errs[0] != nil {
		t.Fatalf("survivor: %v", errs[0])
	}
	if res.Outcome != OutcomeRecovered || len(res.Recoveries) != 1 {
		t.Fatalf("survivor outcome %v with %d recoveries", res.Outcome, len(res.Recoveries))
	}
	resume := res.Recoveries[0].ResumeStep

	// Reference: restore the same checkpoint file into fresh objects and run
	// the remaining steps without any engine. With Average and world size 1
	// the supervised survivor's gradients are untouched by the reduction, so
	// the two trajectories must match float-for-float.
	newModel, newOpt, newGen := elasticFixtures(4)
	m := newModel()
	opt := newOpt(1)
	st, err := LoadTrainingCheckpointFile(filepath.Join(dir, ckptFileName(resume)), m)
	if err != nil {
		t.Fatalf("loading resume checkpoint: %v", err)
	}
	if st.Step != resume {
		t.Fatalf("resume checkpoint records step %d, want %d", st.Step, resume)
	}
	if err := RestoreTrainState(m, opt, st); err != nil {
		t.Fatal(err)
	}
	gen, err := newGen(0, 1, resume)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(Config{Model: m, Optimizer: opt})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	ref, err := tr.Run(gen, steps-int(resume))
	if err != nil {
		t.Fatal(err)
	}

	for i, r := range ref {
		got := res.Steps[int(resume)+i]
		if got.Loss != r.Loss {
			t.Fatalf("step %d: recovered loss %v != reference %v", int(resume)+i, got.Loss, r.Loss)
		}
	}
}

// TestElasticEndToEndTCP is the acceptance scenario over real sockets: a
// 3-rank TCP job loses rank 2 to an abrupt abort; the survivors recover and
// complete the full budget on the shrunk job.
func TestElasticEndToEndTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP elastic integration in -short mode")
	}
	// Generous deadlines: under -race every step and negotiation runs many
	// times slower, and a too-tight RecvTimeout declares healthy peers dead.
	comms, err := mpi.StartLocalTCPJobOpts(3, mpi.TCPOptions{
		RecvTimeout:  time.Second,
		DrainTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range comms {
			c.Close()
		}
	}()
	dir := t.TempDir()
	const steps, dieAfter = 8, 3

	var wg sync.WaitGroup
	results := make([]*SupervisorResult, 2)
	errs := make([]error, 3)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r], errs[r] = Supervise(elasticConfig(comms[r], steps, dir))
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs[2] = runDoomedRank(t, comms[2], 2, dieAfter)
	}()
	wg.Wait()

	if errs[2] != nil {
		t.Fatalf("doomed rank: %v", errs[2])
	}
	for r := 0; r < 2; r++ {
		if errs[r] != nil {
			t.Fatalf("survivor %d: %v", r, errs[r])
		}
		res := results[r]
		if res.Outcome != OutcomeRecovered {
			t.Fatalf("survivor %d: outcome %v, want recovered", r, res.Outcome)
		}
		if res.FinalStep != steps || len(res.Steps) != steps {
			t.Fatalf("survivor %d: final step %d (%d stats), want %d",
				r, res.FinalStep, len(res.Steps), steps)
		}
		ev := res.Recoveries[0]
		if ev.OldSize != 3 || ev.NewSize != 2 {
			t.Fatalf("survivor %d: shrink %d -> %d, want 3 -> 2", r, ev.OldSize, ev.NewSize)
		}
	}
}
