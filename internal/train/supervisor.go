package train

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"dnnperf/internal/data"
	"dnnperf/internal/horovod"
	"dnnperf/internal/models"
	"dnnperf/internal/mpi"
	"dnnperf/internal/telemetry"
)

// Supervisor: elastic checkpoint-restart for data-parallel training. Each
// rank wraps its training loop in Supervise, which periodically checkpoints
// (leader only) and, when a step fails with a typed transport error —
// a rank died — runs the recovery sequence on the survivors:
//
//  1. quiesce the Horovod engine (its loop has usually already latched the
//     failure and exited),
//  2. agree on the survivor set and build a shrunk communicator
//     (mpi.Comm.Shrink, retried with backoff under a fresh epoch),
//  3. restart the engine on the shrunk communicator,
//  4. roll back: rebuild model and optimizer for the new world size, restore
//     the latest valid checkpoint (the new leader reads and validates it,
//     then broadcasts the bytes so every survivor restores identical state),
//  5. re-shard the data pipeline and rescale the learning rate for the new
//     size, and continue training to the target step.
//
// The dead rank's contribution is absorbed by re-sharding: the survivors'
// generators are rebuilt for (new rank, new size) at the resume step, and
// NewOptimizer(newSize) re-derives the LR schedule (linear scaling) for the
// smaller global batch.

// Outcome classifies how a supervised run ended.
type Outcome int

const (
	// OutcomeClean: reached the target step with the full world.
	OutcomeClean Outcome = iota
	// OutcomeRecovered: reached the target step after one or more
	// recoveries from rank failure.
	OutcomeRecovered
	// OutcomeFailed: the run could not complete.
	OutcomeFailed
)

func (o Outcome) String() string {
	switch o {
	case OutcomeClean:
		return "clean"
	case OutcomeRecovered:
		return "recovered"
	default:
		return "failed"
	}
}

// RecoveryEvent records one successful recovery.
type RecoveryEvent struct {
	// FailedRanks are the dead ranks, in the numbering of the communicator
	// that failed (the pre-shrink world).
	FailedRanks []int
	OldSize     int
	NewSize     int
	// ResumeStep is the global step training rolled back to.
	ResumeStep int64
	// Latency is the wall time from failure detection to training resumed.
	Latency time.Duration
}

// SupervisorConfig configures one rank's supervised run.
type SupervisorConfig struct {
	// Comm is the full job's communicator.
	Comm *mpi.Comm
	// Engine configures the Horovod engine (Average is usually true).
	Engine horovod.Config
	// NewModel builds the model deterministically: every call, on every
	// rank, must produce identical initial weights.
	NewModel func() *models.Model
	// NewOptimizer builds the optimizer for a world of the given size, so a
	// shrink can re-derive linearly scaled learning rates.
	NewOptimizer func(worldSize int) Optimizer
	// NewGen builds the data generator for (rank, size) positioned at
	// startStep — the resume point after a rollback.
	NewGen func(rank, size int, startStep int64) (func() data.Batch, error)
	// Steps is the target number of global steps.
	Steps int
	// IntraThreads/InterThreads size the executor (0 = 1).
	IntraThreads int
	InterThreads int
	// CkptDir enables checkpointing when non-empty: the leader writes
	// ckpt-%08d.dnpf files there, and recovery (and bootstrap) restores
	// from the newest valid one.
	CkptDir string
	// CkptEvery is the checkpoint period in steps (default 0 = never).
	CkptEvery int
	// MaxRecoveries bounds how many rank failures a run survives
	// (0 = default 2, negative = unlimited).
	MaxRecoveries int
	// ShrinkRetries bounds survivor-agreement attempts per recovery
	// (default 3).
	ShrinkRetries int
	// Backoff is the wait between shrink attempts, doubled each retry
	// (default 50ms).
	Backoff time.Duration
	// Telemetry, if set, is passed to the trainer and records supervisor
	// events: train.recoveries, train.shrink_attempts, train.checkpoints.
	Telemetry *telemetry.Registry
	// Tracer, if set, is passed to the trainer; recoveries additionally
	// land as instant events on the timeline.
	Tracer *telemetry.Tracer
	// Health, if set, mirrors the run's elastic state for the live /healthz
	// endpoint: ok after bootstrap, recovering while a shrink is in
	// progress, degraded (healthy, but smaller world) after a successful
	// recovery. The terminal done/failed transition is the caller's — it
	// knows whether other work follows the supervised run.
	Health *telemetry.Health
	// OnStep, if set, is called on this rank after every successful step
	// with the completed global step number and its statistics. It is the
	// supervised-run hook an external driver (the scenario runner) uses to
	// observe progress, fire step-scheduled events, and inject per-rank
	// slowdowns. Called synchronously on the training goroutine: a sleeping
	// hook slows this rank's next step, exactly like a straggling process.
	// After a rollback the step counter rewinds, so the hook may see the
	// same step number again — fire-once triggers belong to the caller.
	OnStep func(step int64, st StepStats)
}

func (c SupervisorConfig) withDefaults() (SupervisorConfig, error) {
	if c.Comm == nil {
		return c, errors.New("train: supervisor needs a communicator")
	}
	if c.NewModel == nil || c.NewOptimizer == nil || c.NewGen == nil {
		return c, errors.New("train: supervisor needs NewModel, NewOptimizer and NewGen")
	}
	if c.Steps < 1 {
		return c, fmt.Errorf("train: supervisor steps %d < 1", c.Steps)
	}
	if c.MaxRecoveries == 0 {
		c.MaxRecoveries = 2
	}
	if c.ShrinkRetries <= 0 {
		c.ShrinkRetries = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
	return c, nil
}

// SupervisorResult is one rank's view of a supervised run.
type SupervisorResult struct {
	Outcome    Outcome
	FinalStep  int64
	WorldSize  int // world size at the end of the run
	Rank       int // this rank's id at the end of the run
	Steps      []StepStats
	Recoveries []RecoveryEvent
	// EngineStats are the cumulative Horovod counters, across restarts.
	EngineStats horovod.Stats
}

// incarnation is the per-world-size training state: everything that must be
// rebuilt when the communicator changes.
type incarnation struct {
	comm    *mpi.Comm
	eng     *horovod.Engine
	model   *models.Model
	opt     Optimizer
	trainer *Trainer
	gen     func() data.Batch
}

func (in *incarnation) close() {
	if in.trainer != nil {
		in.trainer.Close()
	}
}

// Supervise runs the elastic training loop on this rank. All ranks of the
// job must call it; the returned result reflects this rank's final view.
// The error is non-nil only for OutcomeFailed.
func Supervise(cfg SupervisorConfig) (*SupervisorResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return &SupervisorResult{Outcome: OutcomeFailed}, err
	}
	res := &SupervisorResult{}
	sup := &supervisor{
		cfg:            cfg,
		res:            res,
		recoveries:     cfg.Telemetry.Counter("train.recoveries"),
		shrinkAttempts: cfg.Telemetry.Counter("train.shrink_attempts"),
		checkpoints:    cfg.Telemetry.Counter("train.checkpoints"),
	}
	err = sup.run()
	if sup.in != nil {
		if sup.in.eng != nil {
			res.EngineStats = sup.in.eng.Stats()
		}
		res.WorldSize = sup.in.comm.Size()
		res.Rank = sup.in.comm.Rank()
		sup.in.close()
	}
	res.FinalStep = sup.step
	if err != nil {
		res.Outcome = OutcomeFailed
		return res, err
	}
	if len(res.Recoveries) > 0 {
		res.Outcome = OutcomeRecovered
	} else {
		res.Outcome = OutcomeClean
	}
	return res, nil
}

type supervisor struct {
	cfg   SupervisorConfig
	res   *SupervisorResult
	in    *incarnation
	step  int64 // completed global steps
	epoch int   // next shrink epoch

	recoveries     *telemetry.Counter
	shrinkAttempts *telemetry.Counter
	checkpoints    *telemetry.Counter
}

func (s *supervisor) run() error {
	if err := s.bootstrap(); err != nil {
		return err
	}
	s.cfg.Health.Set(telemetry.HealthOK, "world", s.in.comm.Size())
	recoveries := 0
	for s.step < int64(s.cfg.Steps) {
		st, err := s.in.trainer.Step(s.in.gen())
		if err == nil {
			s.step++
			s.res.Steps = append(s.res.Steps, st)
			if cerr := s.maybeCheckpoint(); cerr != nil {
				return fmt.Errorf("train: checkpoint at step %d: %w", s.step, cerr)
			}
			if s.cfg.OnStep != nil {
				s.cfg.OnStep(s.step, st)
			}
			continue
		}
		pe, ok := mpi.AsPeerError(err)
		if !ok {
			return err // a local failure, not a peer death: not survivable
		}
		if s.cfg.MaxRecoveries >= 0 && recoveries >= s.cfg.MaxRecoveries {
			return fmt.Errorf("train: rank failure after %d recoveries (limit reached): %w",
				recoveries, err)
		}
		if rerr := s.recover([]int{pe.Rank}); rerr != nil {
			return fmt.Errorf("train: recovery from %v: %w", err, rerr)
		}
		recoveries++
	}
	return nil
}

// bootstrap builds the first incarnation on the full communicator and
// restores the newest valid checkpoint if one exists (cold resume).
func (s *supervisor) bootstrap() error {
	in, err := s.build(s.cfg.Comm, func() *horovod.Engine {
		return horovod.NewEngine(s.cfg.Comm, s.cfg.Engine)
	})
	if err != nil {
		return err
	}
	s.in = in
	return nil
}

// build constructs an incarnation on comm: model, optimizer sized for the
// world, checkpoint restore, re-sharded generator, trainer. The engine is
// created (via newEngine) only after the restore broadcast has completed:
// a running engine issues its own collectives on comm, and the MPI usage
// rule allows one collective at a time per communicator — starting it
// earlier would interleave negotiation frames with the checkpoint blob.
func (s *supervisor) build(comm *mpi.Comm, newEngine func() *horovod.Engine) (*incarnation, error) {
	model := s.cfg.NewModel()
	opt := s.cfg.NewOptimizer(comm.Size())
	step, err := s.restore(comm, model, opt)
	if err != nil {
		return nil, err
	}
	s.step = step
	if int64(len(s.res.Steps)) > step {
		// Roll the step log back with the training state.
		s.res.Steps = s.res.Steps[:step]
	}
	gen, err := s.cfg.NewGen(comm.Rank(), comm.Size(), step)
	if err != nil {
		return nil, err
	}
	eng := newEngine()
	tr, err := New(Config{
		Model:        model,
		IntraThreads: s.cfg.IntraThreads,
		InterThreads: s.cfg.InterThreads,
		Optimizer:    opt,
		Engine:       eng,
		Rank:         comm.Rank(),
		Telemetry:    s.cfg.Telemetry,
		Tracer:       s.cfg.Tracer,
	})
	if err != nil {
		return nil, err
	}
	return &incarnation{comm: comm, eng: eng, model: model, opt: opt, trainer: tr, gen: gen}, nil
}

// recover runs the shrink-and-resume sequence after a step failed with a
// typed peer error naming a suspect.
func (s *supervisor) recover(suspects []int) error {
	t0 := time.Now()
	old := s.in
	oldSize := old.comm.Size()
	s.cfg.Health.Set(telemetry.HealthRecovering, "suspects", suspects, "old_size", oldSize)
	// The engine's loop has latched the failure; make its exit deterministic
	// before negotiating the new world.
	old.eng.Quiesce()

	var newComm *mpi.Comm
	var survivors []int
	var err error
	backoff := s.cfg.Backoff
	for attempt := 0; attempt < s.cfg.ShrinkRetries; attempt++ {
		s.shrinkAttempts.Inc()
		newComm, survivors, err = old.comm.Shrink(suspects, mpi.ShrinkOptions{Epoch: s.epoch})
		s.epoch++
		if err == nil {
			break
		}
		if errors.Is(err, mpi.ErrEvicted) {
			return err // the survivors voted this rank out; do not rejoin
		}
		// A rank died mid-protocol: carry the evidence into the next attempt.
		if pe, ok := mpi.AsPeerError(err); ok {
			suspects = append(suspects, pe.Rank)
		}
		time.Sleep(backoff)
		backoff *= 2
	}
	if err != nil {
		return fmt.Errorf("survivor agreement failed after %d attempts: %w", s.cfg.ShrinkRetries, err)
	}

	old.close()
	in, err := s.build(newComm, func() *horovod.Engine { return old.eng.Restart(newComm) })
	if err != nil {
		return err
	}
	s.in = in

	failed := make([]int, 0, oldSize-len(survivors))
	alive := make(map[int]bool, len(survivors))
	for _, r := range survivors {
		alive[r] = true
	}
	for r := 0; r < oldSize; r++ {
		if !alive[r] {
			failed = append(failed, r)
		}
	}
	s.res.Recoveries = append(s.res.Recoveries, RecoveryEvent{
		FailedRanks: failed,
		OldSize:     oldSize,
		NewSize:     newComm.Size(),
		ResumeStep:  s.step,
		Latency:     time.Since(t0),
	})
	s.recoveries.Inc()
	s.cfg.Health.Set(telemetry.HealthDegraded,
		"failed_ranks", failed, "new_size", newComm.Size(), "recoveries", len(s.res.Recoveries))
	s.cfg.Tracer.Instant("train.recovery", "elastic", map[string]any{
		"failed_ranks": failed,
		"old_size":     oldSize,
		"new_size":     newComm.Size(),
		"resume_step":  s.step,
		"latency_us":   time.Since(t0).Microseconds(),
	})
	return nil
}

// maybeCheckpoint writes a v2 checkpoint on the leader at the configured
// period. Step s.step has just completed.
func (s *supervisor) maybeCheckpoint() error {
	if s.cfg.CkptDir == "" || s.cfg.CkptEvery <= 0 || s.in.comm.Rank() != 0 {
		return nil
	}
	if s.step%int64(s.cfg.CkptEvery) != 0 {
		return nil
	}
	path := filepath.Join(s.cfg.CkptDir, ckptFileName(s.step))
	if err := SaveTrainingCheckpointFile(path, s.in.model, CaptureTrainState(s.in.opt, s.step)); err != nil {
		return err
	}
	s.checkpoints.Inc()
	return nil
}

func ckptFileName(step int64) string { return fmt.Sprintf("ckpt-%08d.dnpf", step) }

// restore rolls model and opt to the newest valid checkpoint, coordinated
// across comm: the leader reads candidate files newest-first, validates the
// first loadable one against a scratch model, and broadcasts its bytes (an
// empty broadcast means fresh start). Every rank then restores from the same
// bytes, so the rolled-back state is identical everywhere — no rank ever
// reads the directory mid-rename. Returns the restored global step.
func (s *supervisor) restore(comm *mpi.Comm, model *models.Model, opt Optimizer) (int64, error) {
	if s.cfg.CkptDir == "" {
		return 0, nil
	}
	var blob []byte
	if comm.Rank() == 0 {
		blob = s.newestValidCheckpoint()
	}
	blob, err := comm.BcastBytes(blob, 0)
	if err != nil {
		return 0, fmt.Errorf("train: checkpoint broadcast: %w", err)
	}
	if len(blob) == 0 {
		return 0, nil // no checkpoint: deterministic fresh start on all ranks
	}
	st, err := LoadTrainingCheckpoint(bytes.NewReader(blob), model)
	if err != nil {
		return 0, fmt.Errorf("train: checkpoint restore: %w", err)
	}
	if err := RestoreTrainState(model, opt, st); err != nil {
		return 0, err
	}
	return st.Step, nil
}

// newestValidCheckpoint returns the bytes of the newest checkpoint in
// CkptDir that fully validates against a scratch model, or nil if none do.
// Older files are fallbacks: a torn or corrupt newest file (the leader died
// mid-save before the atomic rename made it durable) must not stop recovery.
func (s *supervisor) newestValidCheckpoint() []byte {
	paths, err := filepath.Glob(filepath.Join(s.cfg.CkptDir, "ckpt-*.dnpf"))
	if err != nil || len(paths) == 0 {
		return nil
	}
	// %08d-padded step numbers sort lexicographically; newest first.
	sort.Sort(sort.Reverse(sort.StringSlice(paths)))
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			continue
		}
		scratch := s.cfg.NewModel()
		if _, err := LoadTrainingCheckpoint(bytes.NewReader(b), scratch); err != nil {
			continue
		}
		return b
	}
	return nil
}
