package train

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"time"

	"dnnperf/internal/data"
	"dnnperf/internal/horovod"
	"dnnperf/internal/models"
	"dnnperf/internal/mpi"
	"dnnperf/internal/telemetry"
)

// Supervisor: elastic checkpoint-restart for data-parallel training. Each
// rank wraps its training loop in Supervise, which periodically checkpoints
// (leader only) and, when a step fails with a typed transport error —
// a rank died — runs the recovery sequence on the survivors:
//
//  1. quiesce the Horovod engine (its loop has usually already latched the
//     failure and exited),
//  2. agree on the survivor set and build a shrunk communicator
//     (mpi.Comm.Shrink, retried with backoff under a fresh epoch),
//  3. restart the engine on the shrunk communicator,
//  4. roll back: rebuild model and optimizer for the new world size, restore
//     the latest valid checkpoint (the new leader reads and validates it,
//     then broadcasts the bytes so every survivor restores identical state),
//  5. re-shard the data pipeline and rescale the learning rate for the new
//     size, and continue training to the target step.
//
// The dead rank's contribution is absorbed by re-sharding: the survivors'
// generators are rebuilt for (new rank, new size) at the resume step, and
// NewOptimizer(newSize) re-derives the LR schedule (linear scaling) for the
// smaller global batch.
//
// Elasticity also runs the other way. A shrink only proceeds when the
// survivors hold a strict majority of the previous world (mpi.ErrNoQuorum
// otherwise): the minority side parks — it produces no optimizer updates,
// which is what eliminates split-brain — and loops in mpi.Rejoin until the
// majority readmits it. Healed or restarted processes (SupervisorConfig.
// Joiner) take the same admission path. The leader drains join requests
// between steps, announces a grow boundary through the Horovod engine's
// readiness negotiation so every member quiesces at the same step, snapshots
// the live training state, grows the communicator (mpi.Comm.Grow), and the
// whole world — members and joiners alike — resumes bit-exactly from the
// broadcast snapshot with shards re-scaled back up.

// Outcome classifies how a supervised run ended.
type Outcome int

const (
	// OutcomeClean: reached the target step with the full world.
	OutcomeClean Outcome = iota
	// OutcomeRecovered: reached the target step after one or more
	// recoveries from rank failure.
	OutcomeRecovered
	// OutcomeFailed: the run could not complete.
	OutcomeFailed
	// OutcomePreempted: the run halted cooperatively at a HaltAt boundary
	// (checkpointing first), so a later run can resume it bit-exactly.
	OutcomePreempted
)

func (o Outcome) String() string {
	switch o {
	case OutcomeClean:
		return "clean"
	case OutcomeRecovered:
		return "recovered"
	case OutcomePreempted:
		return "preempted"
	default:
		return "failed"
	}
}

// RecoveryEvent records one successful recovery.
type RecoveryEvent struct {
	// FailedRanks are the dead ranks, in the numbering of the communicator
	// that failed (the pre-shrink world).
	FailedRanks []int
	OldSize     int
	NewSize     int
	// ResumeStep is the global step training rolled back to.
	ResumeStep int64
	// Latency is the wall time from failure detection to training resumed.
	Latency time.Duration
}

// RegrowEvent records one successful regrow — the world growing back after
// a heal or restart — as seen by this rank (member or joiner side).
type RegrowEvent struct {
	OldSize int
	NewSize int
	// Joined are the readmitted ranks, in root (original job) numbering.
	Joined []int
	// ResumeStep is the global step the regrown world resumed from.
	ResumeStep int64
	// Latency is the wall time from the grow boundary (or, for a joiner,
	// the start of its admission loop) to training resumed.
	Latency time.Duration
}

// SupervisorConfig configures one rank's supervised run.
type SupervisorConfig struct {
	// Comm is the full job's communicator.
	Comm *mpi.Comm
	// Engine configures the Horovod engine (Average is usually true).
	Engine horovod.Config
	// NewModel builds the model deterministically: every call, on every
	// rank, must produce identical initial weights.
	NewModel func() *models.Model
	// NewOptimizer builds the optimizer for a world of the given size, so a
	// shrink can re-derive linearly scaled learning rates.
	NewOptimizer func(worldSize int) Optimizer
	// NewGen builds the data generator for (rank, size) positioned at
	// startStep — the resume point after a rollback.
	NewGen func(rank, size int, startStep int64) (func() data.Batch, error)
	// Steps is the target number of global steps.
	Steps int
	// IntraThreads/InterThreads size the executor (0 = 1).
	IntraThreads int
	InterThreads int
	// CkptDir enables checkpointing when non-empty: the leader writes
	// ckpt-%08d.dnpf files there, and recovery (and bootstrap) restores
	// from the newest valid one.
	CkptDir string
	// CkptEvery is the checkpoint period in steps (default 0 = never).
	CkptEvery int
	// KeepCkpts bounds how many valid checkpoints the leader retains in
	// CkptDir: after each save, files older than the KeepCkpts newest valid
	// ones are garbage-collected (0 = default 3, negative = keep all).
	KeepCkpts int
	// Joiner marks this rank as a healed or restarted process rejoining a
	// running job: bootstrap skips the normal cold start and instead runs
	// the mpi.Rejoin admission loop against the leader, then resumes from
	// the state broadcast by the regrown world.
	Joiner bool
	// RejoinTimeout bounds the admission loop of a parked or restarted rank
	// (0 = the mpi package's default, 30s).
	RejoinTimeout time.Duration
	// RegrowWait keeps the job lingering after the final step while the
	// world is smaller than it started: the leader keeps admitting joiners
	// for this long, so a late rejoiner still lands (0 = don't linger).
	RegrowWait time.Duration
	// AllowMinority opts out of the quorum rule: a shrink that would leave
	// this side with half or fewer of the previous world's ranks proceeds
	// instead of parking. Meant for single-sided tests and tools; a real
	// job that sets it can split-brain.
	AllowMinority bool
	// MaxRecoveries bounds how many rank failures a run survives
	// (0 = default 2, negative = unlimited).
	MaxRecoveries int
	// ShrinkRetries bounds survivor-agreement attempts per recovery
	// (default 3).
	ShrinkRetries int
	// Backoff is the wait between shrink attempts, doubled each retry
	// (default 50ms).
	Backoff time.Duration
	// Telemetry, if set, is passed to the trainer and records supervisor
	// events: train.recoveries, train.shrink_attempts, train.checkpoints.
	Telemetry *telemetry.Registry
	// Tracer, if set, is passed to the trainer; recoveries additionally
	// land as instant events on the timeline.
	Tracer *telemetry.Tracer
	// Health, if set, mirrors the run's elastic state for the live /healthz
	// endpoint: ok after bootstrap, recovering while a shrink is in
	// progress, degraded (healthy, but smaller world) after a successful
	// recovery. The terminal done/failed transition is the caller's — it
	// knows whether other work follows the supervised run.
	Health *telemetry.Health
	// OnStep, if set, is called on this rank after every successful step
	// with the completed global step number and its statistics. It is the
	// supervised-run hook an external driver (the scenario runner) uses to
	// observe progress, fire step-scheduled events, and inject per-rank
	// slowdowns. Called synchronously on the training goroutine: a sleeping
	// hook slows this rank's next step, exactly like a straggling process.
	// After a rollback the step counter rewinds, so the hook may see the
	// same step number again — fire-once triggers belong to the caller.
	OnStep func(step int64, st StepStats)
	// HaltAt, if set, is polled before every step: a positive return B asks
	// this rank to stop cooperatively once its completed-step counter
	// reaches B, checkpoint (leader, when CkptDir is set) and end the run
	// with OutcomePreempted. Every rank must read the same boundary, and
	// the caller must pick B strictly above the highest completed step at
	// publish time (lockstep bounds the spread to one step, so
	// maxObserved+3 is always safe); all ranks then halt at exactly B with
	// no collective outstanding, which is what makes preemption look like
	// a clean end instead of a rank failure. This is the scheduler's
	// preempt-as-shrink entry point: halt + checkpoint now, regrow later
	// by re-running with the same CkptDir.
	HaltAt func() int64
}

func (c SupervisorConfig) withDefaults() (SupervisorConfig, error) {
	if c.Comm == nil {
		return c, errors.New("train: supervisor needs a communicator")
	}
	if c.NewModel == nil || c.NewOptimizer == nil || c.NewGen == nil {
		return c, errors.New("train: supervisor needs NewModel, NewOptimizer and NewGen")
	}
	if c.Steps < 1 {
		return c, fmt.Errorf("train: supervisor steps %d < 1", c.Steps)
	}
	if c.MaxRecoveries == 0 {
		c.MaxRecoveries = 2
	}
	if c.ShrinkRetries <= 0 {
		c.ShrinkRetries = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
	if c.KeepCkpts == 0 {
		c.KeepCkpts = 3
	}
	return c, nil
}

// SupervisorResult is one rank's view of a supervised run.
type SupervisorResult struct {
	Outcome    Outcome
	FinalStep  int64
	WorldSize  int // world size at the end of the run
	Rank       int // this rank's id at the end of the run
	Steps      []StepStats
	Recoveries []RecoveryEvent
	// Regrows records each successful world regrowth this rank took part
	// in, on either side of the admission.
	Regrows []RegrowEvent
	// Parked reports that this rank lost quorum and idled — producing no
	// optimizer updates — until readmitted (or the run failed).
	Parked bool
	// ParkedStep is the global step the rank parked at.
	ParkedStep int64
	// WeightsCRC fingerprints the final serialized model and training
	// state. Data-parallel replicas are bit-identical, so every rank that
	// finished the same run must report the same value — disagreement is
	// split-brain evidence. Zero when the run failed.
	WeightsCRC uint32
	// EngineStats are the cumulative Horovod counters, across restarts.
	EngineStats horovod.Stats
}

// incarnation is the per-world-size training state: everything that must be
// rebuilt when the communicator changes.
type incarnation struct {
	comm    *mpi.Comm
	eng     *horovod.Engine
	model   *models.Model
	opt     Optimizer
	trainer *Trainer
	gen     func() data.Batch
}

func (in *incarnation) close() {
	if in.trainer != nil {
		in.trainer.Close()
	}
}

// Supervise runs the elastic training loop on this rank. All ranks of the
// job must call it; the returned result reflects this rank's final view.
// The error is non-nil only for OutcomeFailed.
func Supervise(cfg SupervisorConfig) (*SupervisorResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return &SupervisorResult{Outcome: OutcomeFailed}, err
	}
	res := &SupervisorResult{}
	sup := &supervisor{
		cfg:            cfg,
		res:            res,
		recoveries:     cfg.Telemetry.Counter("train.recoveries"),
		regrows:        cfg.Telemetry.Counter("train.regrows"),
		shrinkAttempts: cfg.Telemetry.Counter("train.shrink_attempts"),
		checkpoints:    cfg.Telemetry.Counter("train.checkpoints"),
	}
	err = sup.run()
	preempted := errors.Is(err, errPreempted)
	if preempted {
		err = nil
	}
	if sup.in != nil {
		if err == nil {
			res.WeightsCRC = weightsCRC(sup.in.model, sup.in.opt, sup.step)
		}
		if sup.in.eng != nil {
			res.EngineStats = sup.in.eng.Stats()
		}
		res.WorldSize = sup.in.comm.Size()
		res.Rank = sup.in.comm.Rank()
		sup.in.close()
	}
	res.FinalStep = sup.step
	if err != nil {
		res.Outcome = OutcomeFailed
		return res, err
	}
	switch {
	case preempted:
		res.Outcome = OutcomePreempted
	case len(res.Recoveries) > 0 || len(res.Regrows) > 0:
		res.Outcome = OutcomeRecovered
	default:
		res.Outcome = OutcomeClean
	}
	return res, nil
}

// weightsCRC fingerprints the model plus its training state by serializing
// them through the checkpoint writer and checksumming the bytes.
func weightsCRC(m *models.Model, opt Optimizer, step int64) uint32 {
	var buf bytes.Buffer
	if err := SaveTrainingCheckpoint(&buf, m, CaptureTrainState(opt, step)); err != nil {
		return 0
	}
	return crc32.ChecksumIEEE(buf.Bytes())
}

type supervisor struct {
	cfg      SupervisorConfig
	res      *SupervisorResult
	in       *incarnation
	step     int64 // completed global steps
	epoch    int   // next shrink/grow epoch
	origSize int   // the job's full world size

	// Leader-only regrow state: the join listener, the joiners pending for
	// the next grow boundary, and whether that boundary has been announced
	// (announce once per batch — moving an announced boundary could split
	// the ranks over which step to quiesce at).
	jl        *mpi.JoinListener
	pending   []mpi.JoinRequest
	announced bool

	// Regrow restore plumbing: when set, restore() feeds the leader's live
	// state snapshot through the broadcast instead of reading CkptDir, so a
	// regrown world resumes bit-exactly with no rollback and no disk.
	regrowRestore bool
	regrowBlob    []byte

	recoveries     *telemetry.Counter
	regrows        *telemetry.Counter
	shrinkAttempts *telemetry.Counter
	checkpoints    *telemetry.Counter
}

func (s *supervisor) run() error {
	if err := s.bootstrap(); err != nil {
		return err
	}
	s.cfg.Health.Set(telemetry.HealthOK, "world", s.in.comm.Size())
	s.cfg.Health.RecordWorld(s.in.comm.Size())
	recoveries := 0
	for s.step < int64(s.cfg.Steps) {
		if f := s.cfg.HaltAt; f != nil {
			if b := f(); b > 0 && s.step >= b {
				return s.halt()
			}
		}
		// A grow directive quiesces every member at the same step boundary:
		// the announcement rode the readiness negotiation, so no rank can
		// have completed the boundary step without having decoded it.
		if ge, gs, ok := s.in.eng.GrowDirective(); ok && s.step >= gs {
			if err := s.regrow(ge); err != nil {
				return fmt.Errorf("train: regrow at step %d: %w", s.step, err)
			}
			continue
		}
		s.admitJoiners(s.step + 1)
		st, err := s.in.trainer.Step(s.in.gen())
		if err == nil {
			s.step++
			s.res.Steps = append(s.res.Steps, st)
			if cerr := s.maybeCheckpoint(); cerr != nil {
				return fmt.Errorf("train: checkpoint at step %d: %w", s.step, cerr)
			}
			if s.cfg.OnStep != nil {
				s.cfg.OnStep(s.step, st)
			}
			continue
		}
		pe, ok := mpi.AsPeerError(err)
		if !ok {
			return err // a local failure, not a peer death: not survivable
		}
		if s.cfg.MaxRecoveries >= 0 && recoveries >= s.cfg.MaxRecoveries {
			return fmt.Errorf("train: rank failure after %d recoveries (limit reached): %w",
				recoveries, err)
		}
		if rerr := s.recover([]int{pe.Rank}); rerr != nil {
			return fmt.Errorf("train: recovery from %v: %w", err, rerr)
		}
		recoveries++
	}
	return s.linger()
}

// bootstrap builds the first incarnation. Members start on the full
// communicator, restore the newest valid checkpoint if one exists (cold
// resume), and arm the regrow machinery: every rank enables the transport's
// rejoin acceptor, and the leader starts collecting join requests. A
// configured Joiner instead goes straight to the admission loop.
func (s *supervisor) bootstrap() error {
	s.origSize = s.cfg.Comm.Size()
	if s.cfg.Joiner {
		return s.bootstrapJoiner()
	}
	mpi.EnableRejoin(s.cfg.Comm)
	if s.cfg.Comm.Rank() == 0 {
		jl, err := mpi.ListenJoins(s.cfg.Comm)
		if err != nil {
			return fmt.Errorf("train: join listener: %w", err)
		}
		s.jl = jl
	}
	in, err := s.build(s.cfg.Comm, func() *horovod.Engine {
		return horovod.NewEngine(s.cfg.Comm, s.cfg.Engine)
	})
	if err != nil {
		return err
	}
	s.in = in
	return nil
}

// bootstrapJoiner is the restarted process's path back into a running job:
// run the admission loop against the leader, then build on the grown
// communicator, restoring from the broadcast live state.
func (s *supervisor) bootstrapJoiner() error {
	t0 := time.Now()
	myRoot := s.cfg.Comm.Rank()
	s.cfg.Health.Set(telemetry.HealthRegrowing, "joiner", true, "root_rank", myRoot)
	mpi.EnableRejoin(s.cfg.Comm)
	newComm, members, epoch, err := s.rejoin(-1)
	if err != nil {
		return fmt.Errorf("train: joiner admission: %w", err)
	}
	s.epoch = epoch + 1
	s.regrowRestore = true
	in, err := s.build(newComm, func() *horovod.Engine {
		return horovod.NewEngine(newComm, s.cfg.Engine)
	})
	s.regrowRestore, s.regrowBlob = false, nil
	if err != nil {
		return err
	}
	s.in = in
	s.res.Regrows = append(s.res.Regrows, RegrowEvent{
		OldSize:    len(members) - 1,
		NewSize:    len(members),
		Joined:     []int{myRoot},
		ResumeStep: s.step,
		Latency:    time.Since(t0),
	})
	s.regrows.Inc()
	return nil
}

// rejoin runs mpi.Rejoin on the job's root communicator, deriving the listen
// address (TCP transports) and the jitter seed from this rank's root rank.
func (s *supervisor) rejoin(epoch int) (*mpi.Comm, []int, int, error) {
	myRoot := s.cfg.Comm.Rank()
	var addr string
	if addrs := s.cfg.Comm.PeerAddrs(); myRoot < len(addrs) {
		addr = addrs[myRoot]
	}
	return mpi.Rejoin(s.cfg.Comm, mpi.RejoinOptions{
		Epoch:   epoch,
		Addr:    addr,
		Timeout: s.cfg.RejoinTimeout,
		Seed:    int64(myRoot) + 1,
		// Both callers — a restarted Joiner and a parked minority — know
		// their previous incarnation is gone, so a leader rejection only
		// means its failure detection has not caught up yet.
		RetryRejected: true,
	})
}

// admitJoiners is the leader's between-steps membership duty: drain newly
// arrived join requests into the pending batch and, once a batch exists,
// announce boundary as the step every member will quiesce and grow at.
func (s *supervisor) admitJoiners(boundary int64) {
	if s.jl == nil || s.in.comm.Rank() != 0 {
		return
	}
	if js := s.jl.Drain(s.epoch, s.in.comm.RootMembers()); len(js) > 0 {
		have := make(map[int]bool, len(s.pending))
		for _, j := range s.pending {
			have[j.Root] = true
		}
		for _, j := range js {
			if !have[j.Root] {
				s.pending = append(s.pending, j)
			}
		}
	}
	if len(s.pending) > 0 && !s.announced {
		s.in.eng.AnnounceGrow(s.epoch, boundary)
		s.announced = true
	}
}

// linger handles regrowth pending at or after the final step: first a
// directive whose boundary landed exactly on the last step, then — when
// RegrowWait is set and the world is still short — a window in which the
// leader keeps admitting joiners while the idle engines' negotiations carry
// the boundary announcements.
func (s *supervisor) linger() error {
	if ge, _, ok := s.in.eng.GrowDirective(); ok {
		if err := s.regrow(ge); err != nil {
			return fmt.Errorf("train: regrow after final step: %w", err)
		}
	}
	if s.cfg.RegrowWait <= 0 {
		return nil
	}
	deadline := time.Now().Add(s.cfg.RegrowWait)
	for s.in.comm.Size() < s.origSize && time.Now().Before(deadline) {
		s.admitJoiners(s.step) // boundary already passed: grow immediately
		if ge, gs, ok := s.in.eng.GrowDirective(); ok && s.step >= gs {
			if err := s.regrow(ge); err != nil {
				return fmt.Errorf("train: regrow while lingering: %w", err)
			}
			continue
		}
		time.Sleep(2 * time.Millisecond)
	}
	return nil
}

// build constructs an incarnation on comm: model, optimizer sized for the
// world, checkpoint restore, re-sharded generator, trainer. The engine is
// created (via newEngine) only after the restore broadcast has completed:
// a running engine issues its own collectives on comm, and the MPI usage
// rule allows one collective at a time per communicator — starting it
// earlier would interleave negotiation frames with the checkpoint blob.
func (s *supervisor) build(comm *mpi.Comm, newEngine func() *horovod.Engine) (*incarnation, error) {
	model := s.cfg.NewModel()
	opt := s.cfg.NewOptimizer(comm.Size())
	step, err := s.restore(comm, model, opt)
	if err != nil {
		return nil, err
	}
	s.step = step
	if int64(len(s.res.Steps)) > step {
		// Roll the step log back with the training state.
		s.res.Steps = s.res.Steps[:step]
	}
	gen, err := s.cfg.NewGen(comm.Rank(), comm.Size(), step)
	if err != nil {
		return nil, err
	}
	eng := newEngine()
	tr, err := New(Config{
		Model:        model,
		IntraThreads: s.cfg.IntraThreads,
		InterThreads: s.cfg.InterThreads,
		Optimizer:    opt,
		Engine:       eng,
		Rank:         comm.Rank(),
		Telemetry:    s.cfg.Telemetry,
		Tracer:       s.cfg.Tracer,
	})
	if err != nil {
		return nil, err
	}
	return &incarnation{comm: comm, eng: eng, model: model, opt: opt, trainer: tr, gen: gen}, nil
}

// recover runs the shrink-and-resume sequence after a step failed with a
// typed peer error naming a suspect.
func (s *supervisor) recover(suspects []int) error {
	t0 := time.Now()
	old := s.in
	oldSize := old.comm.Size()
	s.cfg.Health.Set(telemetry.HealthRecovering, "suspects", suspects, "old_size", oldSize)
	// The engine's loop has latched the failure; make its exit deterministic
	// before negotiating the new world.
	old.eng.Quiesce()

	var newComm *mpi.Comm
	var survivors []int
	var err error
	backoff := s.cfg.Backoff
	noQuorum := 0
	for attempt := 0; attempt < s.cfg.ShrinkRetries; attempt++ {
		s.shrinkAttempts.Inc()
		newComm, survivors, err = old.comm.Shrink(suspects,
			mpi.ShrinkOptions{Epoch: s.epoch, AllowMinority: s.cfg.AllowMinority})
		s.epoch++
		if err == nil {
			break
		}
		if errors.Is(err, mpi.ErrEvicted) {
			return err // the survivors voted this rank out; do not rejoin
		}
		if errors.Is(err, mpi.ErrNoQuorum) {
			// This side counted half or fewer of the world alive. Training
			// on would be split-brain — but a single verdict can also be a
			// transient false minority (survivors still waiting out their
			// collectives' deadlines look dead). Park only once the verdict
			// repeats or the retry budget is gone; a real partition returns
			// the same count every time.
			if noQuorum++; noQuorum >= 2 || attempt == s.cfg.ShrinkRetries-1 {
				return s.park(old)
			}
			time.Sleep(backoff)
			backoff *= 2
			continue
		}
		// A rank died mid-protocol: carry the evidence into the next attempt.
		if pe, ok := mpi.AsPeerError(err); ok {
			suspects = append(suspects, pe.Rank)
		}
		time.Sleep(backoff)
		backoff *= 2
	}
	if err != nil {
		return fmt.Errorf("survivor agreement failed after %d attempts: %w", s.cfg.ShrinkRetries, err)
	}

	// Any grow boundary announced on the old engines died with them; the
	// leader re-announces its pending batch at the post-shrink epoch.
	s.announced = false
	old.close()
	in, err := s.build(newComm, func() *horovod.Engine { return old.eng.Restart(newComm) })
	if err != nil {
		return err
	}
	s.in = in

	failed := make([]int, 0, oldSize-len(survivors))
	alive := make(map[int]bool, len(survivors))
	for _, r := range survivors {
		alive[r] = true
	}
	for r := 0; r < oldSize; r++ {
		if !alive[r] {
			failed = append(failed, r)
		}
	}
	s.res.Recoveries = append(s.res.Recoveries, RecoveryEvent{
		FailedRanks: failed,
		OldSize:     oldSize,
		NewSize:     newComm.Size(),
		ResumeStep:  s.step,
		Latency:     time.Since(t0),
	})
	s.recoveries.Inc()
	s.cfg.Health.Set(telemetry.HealthDegraded,
		"failed_ranks", failed, "new_size", newComm.Size(), "recoveries", len(s.res.Recoveries))
	s.cfg.Health.RecordWorld(newComm.Size())
	s.cfg.Tracer.CompleteArgs("train.recovery", "elastic", 0, t0, time.Since(t0), map[string]any{
		"failed_ranks": failed,
		"old_size":     oldSize,
		"new_size":     newComm.Size(),
		"resume_step":  s.step,
		"latency_us":   time.Since(t0).Microseconds(),
	})
	return nil
}

// park is the minority side of a quorum split. The rank must not train — a
// minority producing optimizer updates IS split-brain — so it idles in the
// admission loop until the majority readmits it (or RejoinTimeout expires
// and the run fails). On readmission it rebuilds from the broadcast state
// like any joiner; its recovery log stays empty and its regrow log records
// the round trip.
func (s *supervisor) park(old *incarnation) error {
	t0 := time.Now()
	myRoot := s.cfg.Comm.Rank()
	s.res.Parked = true
	s.res.ParkedStep = s.step
	s.cfg.Health.Set(telemetry.HealthParked, "step", s.step, "root_rank", myRoot)
	old.close()
	// The wildcard epoch: the majority's epoch advanced an unknown number of
	// shrinks ago, and the leader's stale rejection would teach it to us
	// anyway.
	newComm, members, epoch, err := s.rejoin(-1)
	if err != nil {
		return fmt.Errorf("train: parked rank not readmitted: %w", err)
	}
	s.cfg.Health.Set(telemetry.HealthRegrowing, "epoch", epoch)
	s.epoch = epoch + 1
	s.regrowRestore = true
	in, berr := s.build(newComm, func() *horovod.Engine { return old.eng.Restart(newComm) })
	s.regrowRestore, s.regrowBlob = false, nil
	if berr != nil {
		return berr
	}
	s.in = in
	s.res.Regrows = append(s.res.Regrows, RegrowEvent{
		OldSize:    len(members) - 1,
		NewSize:    len(members),
		Joined:     []int{myRoot},
		ResumeStep: s.step,
		Latency:    time.Since(t0),
	})
	s.regrows.Inc()
	s.cfg.Health.Set(telemetry.HealthOK, "world", newComm.Size(), "rejoined", true)
	s.cfg.Health.RecordWorld(newComm.Size())
	s.cfg.Tracer.CompleteArgs("train.rejoin", "elastic", 0, t0, time.Since(t0), map[string]any{
		"root_rank":   myRoot,
		"new_size":    newComm.Size(),
		"resume_step": s.step,
		"latency_us":  time.Since(t0).Microseconds(),
	})
	return nil
}

// regrow executes one grow boundary: quiesce the engine, snapshot the live
// training state (leader), admit the pending joiners into a grown
// communicator, and rebuild everything on it — every rank, joiners
// included, resumes bit-exactly from the snapshot broadcast. A failed admit
// is not fatal: the current world is still valid, so the members rebuild on
// it and keep training shrunk while the joiners back off and retry.
func (s *supervisor) regrow(epoch int) error {
	t0 := time.Now()
	old := s.in
	oldSize := old.comm.Size()
	oldRoots := old.comm.RootMembers()
	s.cfg.Health.Set(telemetry.HealthRegrowing, "old_size", oldSize, "epoch", epoch)
	old.eng.Quiesce()

	s.regrowRestore = true
	if old.comm.Rank() == 0 {
		var buf bytes.Buffer
		if err := SaveTrainingCheckpoint(&buf, old.model, CaptureTrainState(old.opt, s.step)); err != nil {
			s.regrowRestore = false
			return fmt.Errorf("train: regrow snapshot: %w", err)
		}
		s.regrowBlob = buf.Bytes()
	}

	newComm, members, err := old.comm.Grow(s.pending, mpi.GrowOptions{Epoch: epoch})
	s.epoch = epoch + 1
	s.pending, s.announced = nil, false
	if err != nil {
		old.close()
		in, berr := s.build(old.comm, func() *horovod.Engine { return old.eng.Restart(old.comm) })
		s.regrowRestore, s.regrowBlob = false, nil
		if berr != nil {
			return fmt.Errorf("grow failed (%v) and rebuild failed: %w", err, berr)
		}
		s.in = in
		s.cfg.Health.Set(telemetry.HealthDegraded, "grow_error", err.Error())
		return nil
	}

	old.close()
	in, err := s.build(newComm, func() *horovod.Engine { return old.eng.Restart(newComm) })
	s.regrowRestore, s.regrowBlob = false, nil
	if err != nil {
		return err
	}
	s.in = in

	wasMember := make(map[int]bool, len(oldRoots))
	for _, r := range oldRoots {
		wasMember[r] = true
	}
	joined := make([]int, 0, len(members)-len(oldRoots))
	for _, r := range members {
		if !wasMember[r] {
			joined = append(joined, r)
		}
	}
	s.res.Regrows = append(s.res.Regrows, RegrowEvent{
		OldSize:    oldSize,
		NewSize:    newComm.Size(),
		Joined:     joined,
		ResumeStep: s.step,
		Latency:    time.Since(t0),
	})
	s.regrows.Inc()
	s.cfg.Health.Set(telemetry.HealthOK,
		"world", newComm.Size(), "joined", joined, "regrows", len(s.res.Regrows))
	s.cfg.Health.RecordWorld(newComm.Size())
	s.cfg.Tracer.CompleteArgs("train.regrow", "elastic", 0, t0, time.Since(t0), map[string]any{
		"joined":      joined,
		"old_size":    oldSize,
		"new_size":    newComm.Size(),
		"resume_step": s.step,
		"latency_us":  time.Since(t0).Microseconds(),
	})
	return nil
}

// maybeCheckpoint writes a v2 checkpoint on the leader at the configured
// period. Step s.step has just completed.
func (s *supervisor) maybeCheckpoint() error {
	if s.cfg.CkptDir == "" || s.cfg.CkptEvery <= 0 || s.in.comm.Rank() != 0 {
		return nil
	}
	if s.step%int64(s.cfg.CkptEvery) != 0 {
		return nil
	}
	t0 := time.Now()
	path := filepath.Join(s.cfg.CkptDir, ckptFileName(s.step))
	if err := SaveTrainingCheckpointFile(path, s.in.model, CaptureTrainState(s.in.opt, s.step)); err != nil {
		return err
	}
	s.checkpoints.Inc()
	s.cfg.Tracer.CompleteArgs("train.checkpoint", "train", 0, t0, time.Since(t0), map[string]any{
		"step": s.step,
	})
	if s.cfg.KeepCkpts > 0 {
		// Best effort: a GC hiccup must not fail training — the next save
		// retries it.
		GCCheckpoints(s.cfg.CkptDir, s.cfg.KeepCkpts, s.cfg.NewModel)
	}
	return nil
}

func ckptFileName(step int64) string { return fmt.Sprintf("ckpt-%08d.dnpf", step) }

// errPreempted is the cooperative-halt sentinel run() returns when a HaltAt
// boundary is reached; Supervise maps it to OutcomePreempted with a nil error.
var errPreempted = errors.New("train: preempted")

// halt ends the run at a preemption boundary: the leader force-writes a
// checkpoint at the current step (ignoring the CkptEvery cadence — this is
// the state the resumed job restores), then every rank returns the
// preemption sentinel. All ranks reach the same boundary before any engine
// tears down, so no peer observes the halt as a failure.
func (s *supervisor) halt() error {
	t0 := time.Now()
	if s.cfg.CkptDir != "" && s.in.comm.Rank() == 0 {
		path := filepath.Join(s.cfg.CkptDir, ckptFileName(s.step))
		if err := SaveTrainingCheckpointFile(path, s.in.model, CaptureTrainState(s.in.opt, s.step)); err != nil {
			return fmt.Errorf("train: preemption checkpoint at step %d: %w", s.step, err)
		}
		s.checkpoints.Inc()
	}
	s.cfg.Health.Set(telemetry.HealthParked, "preempted_step", s.step)
	s.cfg.Tracer.CompleteArgs("train.preempt", "elastic", 0, t0, time.Since(t0), map[string]any{
		"preempted_step": s.step,
	})
	return errPreempted
}

// restore rolls model and opt to the newest valid checkpoint, coordinated
// across comm: the leader reads candidate files newest-first, validates the
// first loadable one against a scratch model, and broadcasts its bytes (an
// empty broadcast means fresh start). Every rank then restores from the same
// bytes, so the rolled-back state is identical everywhere — no rank ever
// reads the directory mid-rename. During a regrow the leader broadcasts its
// live-state snapshot instead, so the grown world (joiners included) resumes
// from the exact pre-grow state with no rollback and no checkpoint files.
// Returns the restored global step.
func (s *supervisor) restore(comm *mpi.Comm, model *models.Model, opt Optimizer) (int64, error) {
	if !s.regrowRestore && s.cfg.CkptDir == "" {
		return 0, nil
	}
	var blob []byte
	if comm.Rank() == 0 {
		if s.regrowRestore {
			blob = s.regrowBlob
		} else {
			blob = s.newestValidCheckpoint()
		}
	}
	blob, err := comm.BcastBytes(blob, 0)
	if err != nil {
		return 0, fmt.Errorf("train: checkpoint broadcast: %w", err)
	}
	if len(blob) == 0 {
		return 0, nil // no checkpoint: deterministic fresh start on all ranks
	}
	st, err := LoadTrainingCheckpoint(bytes.NewReader(blob), model)
	if err != nil {
		return 0, fmt.Errorf("train: checkpoint restore: %w", err)
	}
	if err := RestoreTrainState(model, opt, st); err != nil {
		return 0, err
	}
	return st.Step, nil
}

// newestValidCheckpoint returns the bytes of the newest checkpoint in
// CkptDir that fully validates against a scratch model, or nil if none do.
// Older files are fallbacks: a torn or corrupt newest file (the leader died
// mid-save before the atomic rename made it durable) must not stop recovery.
func (s *supervisor) newestValidCheckpoint() []byte {
	paths, err := filepath.Glob(filepath.Join(s.cfg.CkptDir, "ckpt-*.dnpf"))
	if err != nil || len(paths) == 0 {
		return nil
	}
	// %08d-padded step numbers sort lexicographically; newest first.
	sort.Sort(sort.Reverse(sort.StringSlice(paths)))
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			continue
		}
		scratch := s.cfg.NewModel()
		if _, err := LoadTrainingCheckpoint(bytes.NewReader(b), scratch); err != nil {
			continue
		}
		return b
	}
	return nil
}
