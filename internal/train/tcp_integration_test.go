package train

import (
	"sync"
	"testing"
	"time"

	"dnnperf/internal/data"
	"dnnperf/internal/horovod"
	"dnnperf/internal/mpi"
)

// TestDistributedTrainingOverTCP exercises the full production stack end to
// end: TCP transport, Horovod engine with fusion and response cache, the
// graph executor with gradient hooks, and SGD — the same path cmd/mpirun
// drives across OS processes, here across goroutines with real sockets.
func TestDistributedTrainingOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP integration in -short mode")
	}
	const ranks = 2
	comms, err := mpi.StartLocalTCPJob(ranks)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range comms {
			c.Close()
		}
	}()

	losses := make([][]float64, ranks)
	caches := make([]horovod.Stats, ranks)
	var wg sync.WaitGroup
	errs := make([]error, ranks)
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			eng := horovod.NewEngine(comms[r], horovod.Config{
				CycleTime: 300 * time.Microsecond,
				Average:   true,
			})
			m := tinyModel(13, 4)
			tr, err := New(Config{Model: m, LR: 0.08, Engine: eng, Rank: r})
			if err != nil {
				errs[r] = err
				return
			}
			defer tr.Close()
			gen, err := data.NewLearnable(4, 3, 16, 4, data.Shard(51, r))
			if err != nil {
				errs[r] = err
				return
			}
			stats, err := tr.Run(gen.Next, 12)
			if err != nil {
				errs[r] = err
				return
			}
			for _, s := range stats {
				losses[r] = append(losses[r], s.Loss)
			}
			if err := eng.Shutdown(); err != nil {
				errs[r] = err
				return
			}
			caches[r] = eng.Stats()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r, ls := range losses {
		first := (ls[0] + ls[1]) / 2
		last := (ls[len(ls)-1] + ls[len(ls)-2]) / 2
		if last >= first {
			t.Fatalf("rank %d: loss did not fall over TCP (%.3f -> %.3f)", r, first, last)
		}
	}
	// Stable names across 12 steps: the response cache must dominate.
	for r, s := range caches {
		if s.CachedAnnouncements <= s.NamedAnnouncements {
			t.Fatalf("rank %d: cache hits (%d) should dominate names (%d)",
				r, s.CachedAnnouncements, s.NamedAnnouncements)
		}
	}
}
