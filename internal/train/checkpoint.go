package train

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"dnnperf/internal/graph"
	"dnnperf/internal/models"
	"dnnperf/internal/tensor"
)

// Checkpoint format (little endian):
//
//	magic "DNPF" | version u32 | varCount u32 |
//	repeat: nameLen u32 | name | rank u32 | dims u32... | payload f32... |
//	crc32(IEEE) of everything before it.
const (
	ckptMagic   = "DNPF"
	ckptVersion = 1
)

// SaveCheckpoint writes every materialized variable of the model to w.
func SaveCheckpoint(w io.Writer, m *models.Model) error {
	crc := crc32.NewIEEE()
	out := io.MultiWriter(w, crc)

	if _, err := out.Write([]byte(ckptMagic)); err != nil {
		return err
	}
	vars := m.G.Variables()
	if err := writeU32(out, ckptVersion); err != nil {
		return err
	}
	if err := writeU32(out, uint32(len(vars))); err != nil {
		return err
	}
	for _, v := range vars {
		v.Materialize()
		if err := writeU32(out, uint32(len(v.Name))); err != nil {
			return err
		}
		if _, err := io.WriteString(out, v.Name); err != nil {
			return err
		}
		shape := v.Value.Shape()
		if err := writeU32(out, uint32(len(shape))); err != nil {
			return err
		}
		for _, d := range shape {
			if err := writeU32(out, uint32(d)); err != nil {
				return err
			}
		}
		buf := make([]byte, 4*v.Value.Len())
		for i, f := range v.Value.Data() {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(f))
		}
		if _, err := out.Write(buf); err != nil {
			return err
		}
	}
	// Trailer: checksum of everything written so far (not through crc).
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], crc.Sum32())
	_, err := w.Write(tr[:])
	return err
}

// LoadCheckpoint restores variables into the model. Every checkpoint
// variable must exist in the model with an identical shape; model variables
// absent from the checkpoint keep their initialization.
func LoadCheckpoint(r io.Reader, m *models.Model) error {
	crc := crc32.NewIEEE()
	in := io.TeeReader(r, crc)

	magic := make([]byte, 4)
	if _, err := io.ReadFull(in, magic); err != nil {
		return fmt.Errorf("train: checkpoint header: %w", err)
	}
	if string(magic) != ckptMagic {
		return fmt.Errorf("train: bad checkpoint magic %q", magic)
	}
	version, err := readU32(in)
	if err != nil {
		return err
	}
	if version != ckptVersion {
		return fmt.Errorf("train: unsupported checkpoint version %d", version)
	}
	count, err := readU32(in)
	if err != nil {
		return err
	}
	byName := make(map[string]*graph.Node)
	for _, v := range m.G.Variables() {
		byName[v.Name] = v
	}
	for i := uint32(0); i < count; i++ {
		nameLen, err := readU32(in)
		if err != nil {
			return err
		}
		if nameLen > 1<<16 {
			return fmt.Errorf("train: corrupt checkpoint (name length %d)", nameLen)
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(in, nameBuf); err != nil {
			return err
		}
		rank, err := readU32(in)
		if err != nil {
			return err
		}
		if rank > 8 {
			return fmt.Errorf("train: corrupt checkpoint (rank %d)", rank)
		}
		shape := make([]int, rank)
		n := 1
		for d := range shape {
			v, err := readU32(in)
			if err != nil {
				return err
			}
			shape[d] = int(v)
			n *= int(v)
		}
		buf := make([]byte, 4*n)
		if _, err := io.ReadFull(in, buf); err != nil {
			return err
		}
		v, ok := byName[string(nameBuf)]
		if !ok {
			return fmt.Errorf("train: checkpoint variable %q not in model", nameBuf)
		}
		v.Materialize()
		if !tensor.ShapeEq(v.Value.Shape(), shape) {
			return fmt.Errorf("train: variable %q shape %v in checkpoint, %v in model",
				nameBuf, shape, v.Value.Shape())
		}
		dst := v.Value.Data()
		for j := range dst {
			dst[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*j:]))
		}
	}
	want := crc.Sum32()
	got, err := readU32(r) // trailer is outside the checksum
	if err != nil {
		return fmt.Errorf("train: checkpoint trailer: %w", err)
	}
	if got != want {
		return fmt.Errorf("train: checkpoint checksum mismatch (%08x vs %08x)", got, want)
	}
	return nil
}

// SaveCheckpointFile writes the model's weights to path atomically.
func SaveCheckpointFile(path string, m *models.Model) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := SaveCheckpoint(bw, m); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadCheckpointFile restores weights from path.
func LoadCheckpointFile(path string, m *models.Model) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return LoadCheckpoint(bufio.NewReader(f), m)
}

func writeU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}
