package train

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"syscall"

	"dnnperf/internal/graph"
	"dnnperf/internal/models"
	"dnnperf/internal/tensor"
)

// Checkpoint format (little endian):
//
// v1 — weights only:
//
//	magic "DNPF" | version u32 | varCount u32 |
//	repeat: nameLen u32 | name | rank u32 | dims u32... | payload f32... |
//	crc32(IEEE) of everything before it.
//
// v2 — full training state, enough for a bit-exact resume:
//
//	magic "DNPF" | version u32 |
//	step u64 | schedStep u64 | optNameLen u32 | optName |
//	varCount u32 | variables (as v1) |
//	slotCount u32 |
//	repeat: varNameLen u32 | varName | slotNameLen u32 | slotName |
//	        rank u32 | dims u32... | payload f32... |
//	crc32(IEEE) of everything before it.
//
// Compatibility rule: v1 checkpoints still load (weights only — the
// returned TrainState has Step 0 and no slots); v2 additionally captures
// the global step, the LR-schedule position, and the optimizer's
// per-variable buffers (Momentum/LARS velocity).
const (
	ckptMagic     = "DNPF"
	ckptVersion   = 1
	ckptVersionV2 = 2
)

// Sanity caps for untrusted checkpoint input. Shapes are validated against
// these caps and against the model's own shapes before any payload-sized
// buffer is allocated, so a corrupt or hostile stream cannot demand a
// multi-GB allocation (or overflow the byte count) ahead of the CRC check.
const (
	maxCkptRank    = 8
	maxCkptDim     = 1 << 24 // single dimension
	maxCkptElems   = 1 << 26 // total elements per tensor (256 MiB of f32)
	maxCkptNameLen = 1 << 16
)

// StateSlot is one per-variable optimizer buffer (e.g. a momentum velocity).
type StateSlot struct {
	Var  string // variable the buffer belongs to
	Name string // slot name, e.g. "velocity"
	Data *tensor.Tensor
}

// TrainState is everything beyond the weights that a bit-exact resume
// needs: the number of completed steps, the LR-schedule position, and the
// optimizer's per-variable slots.
type TrainState struct {
	Version   int // checkpoint version the state was read from
	Step      int64
	SchedStep int64
	Optimizer string
	Slots     []StateSlot
}

// CaptureTrainState snapshots the training position and optimizer state for
// a v2 checkpoint. step is the number of completed steps. The returned
// slots alias the optimizer's live buffers; serialize before the next Step.
func CaptureTrainState(opt Optimizer, step int64) *TrainState {
	st := &TrainState{Version: ckptVersionV2, Step: step}
	if opt == nil {
		return st
	}
	st.Optimizer = opt.Name()
	if so, ok := opt.(*ScheduledOptimizer); ok {
		st.SchedStep = so.Position()
	}
	if so, ok := opt.(StatefulOptimizer); ok {
		st.Slots = so.ExportState()
	}
	return st
}

// RestoreTrainState applies a loaded training state to a freshly
// constructed optimizer: the schedule position and the per-variable slots.
// The weights must already have been restored into m.
func RestoreTrainState(m *models.Model, opt Optimizer, st *TrainState) error {
	if st == nil || opt == nil {
		return nil
	}
	if so, ok := opt.(*ScheduledOptimizer); ok {
		so.SetPosition(st.SchedStep)
	}
	if len(st.Slots) == 0 {
		return nil
	}
	so, ok := opt.(StatefulOptimizer)
	if !ok {
		return fmt.Errorf("train: checkpoint carries %d optimizer slots but %s cannot import state",
			len(st.Slots), opt.Name())
	}
	return so.ImportState(m.G, st.Slots)
}

// SaveCheckpoint writes every materialized variable of the model to w in
// the v1 (weights-only) format.
func SaveCheckpoint(w io.Writer, m *models.Model) error {
	crc := crc32.NewIEEE()
	out := io.MultiWriter(w, crc)

	if _, err := io.WriteString(out, ckptMagic); err != nil {
		return err
	}
	if err := writeU32(out, ckptVersion); err != nil {
		return err
	}
	if err := writeVars(out, m); err != nil {
		return err
	}
	return writeTrailer(w, crc)
}

// SaveTrainingCheckpoint writes a v2 checkpoint: the model's weights plus
// the training state (step, schedule position, optimizer slots).
func SaveTrainingCheckpoint(w io.Writer, m *models.Model, st *TrainState) error {
	if st == nil {
		st = &TrainState{}
	}
	crc := crc32.NewIEEE()
	out := io.MultiWriter(w, crc)

	if _, err := io.WriteString(out, ckptMagic); err != nil {
		return err
	}
	if err := writeU32(out, ckptVersionV2); err != nil {
		return err
	}
	if err := writeU64(out, uint64(st.Step)); err != nil {
		return err
	}
	if err := writeU64(out, uint64(st.SchedStep)); err != nil {
		return err
	}
	if err := writeString(out, st.Optimizer); err != nil {
		return err
	}
	if err := writeVars(out, m); err != nil {
		return err
	}
	if err := writeU32(out, uint32(len(st.Slots))); err != nil {
		return err
	}
	for _, s := range st.Slots {
		if err := writeString(out, s.Var); err != nil {
			return err
		}
		if err := writeString(out, s.Name); err != nil {
			return err
		}
		if err := writeTensor(out, s.Data); err != nil {
			return err
		}
	}
	return writeTrailer(w, crc)
}

// LoadCheckpoint restores variables into the model, accepting v1 and v2
// checkpoints (any v2 training state is discarded). Every checkpoint
// variable must exist in the model with an identical shape; model variables
// absent from the checkpoint keep their initialization.
func LoadCheckpoint(r io.Reader, m *models.Model) error {
	_, err := LoadTrainingCheckpoint(r, m)
	return err
}

// LoadTrainingCheckpoint restores variables into the model and returns the
// training state. A v1 checkpoint yields a zero state (Version 1, weights
// only); a v2 checkpoint yields the saved step, schedule position, and
// optimizer slots, which RestoreTrainState applies to an optimizer.
func LoadTrainingCheckpoint(r io.Reader, m *models.Model) (*TrainState, error) {
	crc := crc32.NewIEEE()
	in := io.TeeReader(r, crc)

	magic := make([]byte, 4)
	if _, err := io.ReadFull(in, magic); err != nil {
		return nil, fmt.Errorf("train: checkpoint header: %w", err)
	}
	if string(magic) != ckptMagic {
		return nil, fmt.Errorf("train: bad checkpoint magic %q", magic)
	}
	version, err := readU32(in)
	if err != nil {
		return nil, err
	}
	st := &TrainState{Version: int(version)}
	switch version {
	case ckptVersion:
	case ckptVersionV2:
		step, err := readU64(in)
		if err != nil {
			return nil, err
		}
		schedStep, err := readU64(in)
		if err != nil {
			return nil, err
		}
		optName, err := readString(in, 256)
		if err != nil {
			return nil, fmt.Errorf("train: optimizer name: %w", err)
		}
		st.Step, st.SchedStep, st.Optimizer = int64(step), int64(schedStep), optName
	default:
		return nil, fmt.Errorf("train: unsupported checkpoint version %d", version)
	}

	byName := make(map[string]*graph.Node)
	for _, v := range m.G.Variables() {
		byName[v.Name] = v
	}

	count, err := readU32(in)
	if err != nil {
		return nil, err
	}
	if int(count) > len(byName) {
		return nil, fmt.Errorf("train: corrupt checkpoint (%d variables, model has %d)", count, len(byName))
	}
	for i := uint32(0); i < count; i++ {
		if err := readVariableInto(in, byName); err != nil {
			return nil, err
		}
	}

	if version == ckptVersionV2 {
		slotCount, err := readU32(in)
		if err != nil {
			return nil, err
		}
		// Optimizers here keep at most a handful of slots per variable.
		if int(slotCount) > 8*len(byName) {
			return nil, fmt.Errorf("train: corrupt checkpoint (%d optimizer slots)", slotCount)
		}
		for i := uint32(0); i < slotCount; i++ {
			slot, err := readSlot(in, byName)
			if err != nil {
				return nil, err
			}
			st.Slots = append(st.Slots, slot)
		}
	}

	want := crc.Sum32()
	got, err := readU32(r) // trailer is outside the checksum
	if err != nil {
		return nil, fmt.Errorf("train: checkpoint trailer: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("train: checkpoint checksum mismatch (%08x vs %08x)", got, want)
	}
	return st, nil
}

// readVariableInto reads one variable record directly into the matching
// model buffer. The shape is validated against the caps and against the
// model's own shape before the payload-sized read buffer is allocated.
func readVariableInto(in io.Reader, byName map[string]*graph.Node) error {
	name, err := readString(in, maxCkptNameLen)
	if err != nil {
		return fmt.Errorf("train: variable name: %w", err)
	}
	shape, n, err := readShape(in)
	if err != nil {
		return fmt.Errorf("train: variable %q: %w", name, err)
	}
	v, ok := byName[name]
	if !ok {
		return fmt.Errorf("train: checkpoint variable %q not in model", name)
	}
	v.Materialize()
	if !tensor.ShapeEq(v.Value.Shape(), shape) {
		return fmt.Errorf("train: variable %q shape %v in checkpoint, %v in model",
			name, shape, v.Value.Shape())
	}
	return readFloatsInto(in, v.Value.Data(), n)
}

// readSlot reads one optimizer-slot record; the slot's shape must match its
// variable's shape in the model.
func readSlot(in io.Reader, byName map[string]*graph.Node) (StateSlot, error) {
	varName, err := readString(in, maxCkptNameLen)
	if err != nil {
		return StateSlot{}, fmt.Errorf("train: slot variable name: %w", err)
	}
	slotName, err := readString(in, 64)
	if err != nil {
		return StateSlot{}, fmt.Errorf("train: slot name: %w", err)
	}
	shape, n, err := readShape(in)
	if err != nil {
		return StateSlot{}, fmt.Errorf("train: slot %q/%q: %w", varName, slotName, err)
	}
	v, ok := byName[varName]
	if !ok {
		return StateSlot{}, fmt.Errorf("train: checkpoint slot for unknown variable %q", varName)
	}
	v.Materialize()
	if !tensor.ShapeEq(v.Value.Shape(), shape) {
		return StateSlot{}, fmt.Errorf("train: slot %q/%q shape %v in checkpoint, variable is %v",
			varName, slotName, shape, v.Value.Shape())
	}
	t := tensor.New(shape...)
	if err := readFloatsInto(in, t.Data(), n); err != nil {
		return StateSlot{}, err
	}
	return StateSlot{Var: varName, Name: slotName, Data: t}, nil
}

// readShape reads rank + dims, enforcing the sanity caps so the element
// count can neither explode nor overflow before anything is allocated.
func readShape(in io.Reader) ([]int, int, error) {
	rank, err := readU32(in)
	if err != nil {
		return nil, 0, err
	}
	if rank > maxCkptRank {
		return nil, 0, fmt.Errorf("corrupt checkpoint (rank %d)", rank)
	}
	shape := make([]int, rank)
	n := 1
	for d := range shape {
		v, err := readU32(in)
		if err != nil {
			return nil, 0, err
		}
		if v == 0 || v > maxCkptDim {
			return nil, 0, fmt.Errorf("corrupt checkpoint (dim %d)", v)
		}
		shape[d] = int(v)
		n *= int(v)
		if n > maxCkptElems {
			return nil, 0, fmt.Errorf("corrupt checkpoint (%d elements exceeds cap)", n)
		}
	}
	return shape, n, nil
}

func readFloatsInto(in io.Reader, dst []float32, n int) error {
	buf := make([]byte, 4*n)
	if _, err := io.ReadFull(in, buf); err != nil {
		return err
	}
	for j := range dst {
		dst[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*j:]))
	}
	return nil
}

// writeVars writes the variable section shared by v1 and v2.
func writeVars(out io.Writer, m *models.Model) error {
	vars := m.G.Variables()
	if err := writeU32(out, uint32(len(vars))); err != nil {
		return err
	}
	for _, v := range vars {
		v.Materialize()
		if err := writeString(out, v.Name); err != nil {
			return err
		}
		if err := writeTensor(out, v.Value); err != nil {
			return err
		}
	}
	return nil
}

func writeTensor(out io.Writer, t *tensor.Tensor) error {
	shape := t.Shape()
	if err := writeU32(out, uint32(len(shape))); err != nil {
		return err
	}
	for _, d := range shape {
		if err := writeU32(out, uint32(d)); err != nil {
			return err
		}
	}
	buf := make([]byte, 4*t.Len())
	for i, f := range t.Data() {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(f))
	}
	_, err := out.Write(buf)
	return err
}

func writeTrailer(w io.Writer, crc interface{ Sum32() uint32 }) error {
	// Trailer: checksum of everything written so far (not through crc).
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], crc.Sum32())
	_, err := w.Write(tr[:])
	return err
}

// SaveCheckpointFile writes the model's weights (v1) to path atomically and
// durably.
func SaveCheckpointFile(path string, m *models.Model) error {
	return saveFileAtomic(path, func(w io.Writer) error { return SaveCheckpoint(w, m) })
}

// SaveTrainingCheckpointFile writes a v2 checkpoint to path atomically and
// durably.
func SaveTrainingCheckpointFile(path string, m *models.Model, st *TrainState) error {
	return saveFileAtomic(path, func(w io.Writer) error { return SaveTrainingCheckpoint(w, m, st) })
}

// LoadCheckpointFile restores weights from path (v1 or v2).
func LoadCheckpointFile(path string, m *models.Model) error {
	_, err := LoadTrainingCheckpointFile(path, m)
	return err
}

// LoadTrainingCheckpointFile restores weights and training state from path.
func LoadTrainingCheckpointFile(path string, m *models.Model) (*TrainState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadTrainingCheckpoint(bufio.NewReader(f), m)
}

// GCCheckpoints removes old checkpoint files from dir, keeping the `keep`
// newest VALID ones (validated against a scratch model from newModel, like
// restore does). Only files strictly older than the keep-th newest valid
// checkpoint are deleted, so the newest valid file always survives, and
// corrupt-but-newer files stay in place as evidence without counting toward
// the quota — the corruption-fallback path keeps working. If fewer than
// `keep` valid checkpoints exist, nothing is deleted. Returns the removed
// paths.
func GCCheckpoints(dir string, keep int, newModel func() *models.Model) ([]string, error) {
	if keep < 1 || newModel == nil {
		return nil, nil
	}
	paths, err := filepath.Glob(filepath.Join(dir, "ckpt-*.dnpf"))
	if err != nil || len(paths) <= keep {
		return nil, err
	}
	// %08d-padded step numbers sort lexicographically; newest first.
	sort.Sort(sort.Reverse(sort.StringSlice(paths)))
	valid, cut := 0, -1
	for i, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			continue
		}
		if _, err := LoadTrainingCheckpoint(bytes.NewReader(b), newModel()); err != nil {
			continue
		}
		if valid++; valid == keep {
			cut = i
			break
		}
	}
	if cut < 0 {
		return nil, nil
	}
	var removed []string
	for _, p := range paths[cut+1:] {
		if err := os.Remove(p); err == nil {
			removed = append(removed, p)
		}
	}
	return removed, nil
}

// saveFileAtomic writes through a temp file and renames into place. The
// temp file is fsynced before the rename and the parent directory after it,
// so a crash right after "save succeeded" cannot leave a missing, empty, or
// torn file behind the reported success.
func saveFileAtomic(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	bw := bufio.NewWriter(f)
	if err := write(bw); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a completed rename is durable. Filesystems
// that reject directory fsync are tolerated — the rename was still atomic.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}

func writeU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func writeU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func writeString(w io.Writer, s string) error {
	if err := writeU32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func readU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func readString(r io.Reader, maxLen uint32) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > maxLen {
		return "", fmt.Errorf("corrupt string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
