package train

import (
	"bytes"
	"fmt"
	"testing"

	"dnnperf/internal/data"
	"dnnperf/internal/models"
)

// newTestOptimizer builds a stateful, scheduled optimizer of the named kind
// — the configuration the v2 checkpoint must capture completely.
func newTestOptimizer(kind string) Optimizer {
	sched := Warmup{Start: 0.01, Target: 0.05, Steps: 3, Next: StepDecay{Base: 0.05, Factor: 0.5, Milestones: []int{6}}}
	switch kind {
	case "momentum":
		return &ScheduledOptimizer{Sched: sched, Inner: &Momentum{LR: 0.01, Mu: 0.9}}
	case "lars":
		return &ScheduledOptimizer{Sched: sched, Inner: &LARS{LR: 0.01, Mu: 0.9, Trust: 0.001}}
	default:
		panic("unknown optimizer kind " + kind)
	}
}

// lossTrajectory trains model m with opt over the given batches and returns
// the per-step losses.
func lossTrajectory(t *testing.T, m *models.Model, opt Optimizer, batches []data.Batch) []float64 {
	t.Helper()
	tr, err := New(Config{Model: m, Optimizer: opt})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	out := make([]float64, 0, len(batches))
	for _, b := range batches {
		st, err := tr.Step(b)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, st.Loss)
	}
	return out
}

// TestResumeEquivalence is the bit-exact resume guarantee: training straight
// through N steps and training k steps, checkpointing, restoring into fresh
// objects, and training the remaining N-k steps must produce identical loss
// trajectories — for both stateful optimizers, under an LR schedule whose
// position matters.
func TestResumeEquivalence(t *testing.T) {
	const total, split = 8, 4
	for _, kind := range []string{"momentum", "lars"} {
		t.Run(kind, func(t *testing.T) {
			gen, err := data.NewLearnable(8, 3, 16, 4, 29)
			if err != nil {
				t.Fatal(err)
			}
			batches := make([]data.Batch, total)
			for i := range batches {
				batches[i] = gen.Next()
			}

			// Straight run.
			mA := tinyModel(3, 8)
			straight := lossTrajectory(t, mA, newTestOptimizer(kind), batches)

			// Run to the split, checkpoint, restore, continue.
			mB := tinyModel(3, 8)
			optB := newTestOptimizer(kind)
			first := lossTrajectory(t, mB, optB, batches[:split])
			var buf bytes.Buffer
			if err := SaveTrainingCheckpoint(&buf, mB, CaptureTrainState(optB, split)); err != nil {
				t.Fatal(err)
			}

			mC := tinyModel(999, 8) // different seed: restore must overwrite everything
			optC := newTestOptimizer(kind)
			st, err := LoadTrainingCheckpoint(bytes.NewReader(buf.Bytes()), mC)
			if err != nil {
				t.Fatal(err)
			}
			if st.Step != split {
				t.Fatalf("restored step = %d, want %d", st.Step, split)
			}
			if err := RestoreTrainState(mC, optC, st); err != nil {
				t.Fatal(err)
			}
			rest := lossTrajectory(t, mC, optC, batches[split:])

			got := append(first, rest...)
			for i := range straight {
				if got[i] != straight[i] {
					t.Fatalf("%s: loss diverges at step %d: straight %v vs resumed %v",
						kind, i, straight[i], got[i])
				}
			}
		})
	}
}

// TestResumeWithoutStateDiverges is the negative control: restoring only the
// weights (v1 semantics) and a fresh optimizer generally does NOT reproduce
// the straight run, because the momentum buffers and schedule position are
// gone. This is what the v2 format exists to fix.
func TestResumeWithoutStateDiverges(t *testing.T) {
	const total, split = 8, 4
	gen, err := data.NewLearnable(8, 3, 16, 4, 29)
	if err != nil {
		t.Fatal(err)
	}
	batches := make([]data.Batch, total)
	for i := range batches {
		batches[i] = gen.Next()
	}

	mA := tinyModel(3, 8)
	straight := lossTrajectory(t, mA, newTestOptimizer("momentum"), batches)

	mB := tinyModel(3, 8)
	optB := newTestOptimizer("momentum")
	lossTrajectory(t, mB, optB, batches[:split])
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, mB); err != nil { // v1: weights only
		t.Fatal(err)
	}
	mC := tinyModel(999, 8)
	if err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), mC); err != nil {
		t.Fatal(err)
	}
	rest := lossTrajectory(t, mC, newTestOptimizer("momentum"), batches[split:])

	same := true
	for i := range rest {
		if rest[i] != straight[split+i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("weights-only resume unexpectedly matched the straight run; the v2 state would be redundant")
	}
}

// TestTrainingCheckpointCapturesState: the v2 round trip restores step,
// schedule position, optimizer name, and velocity slots exactly.
func TestTrainingCheckpointCapturesState(t *testing.T) {
	gen, err := data.NewLearnable(8, 3, 16, 4, 41)
	if err != nil {
		t.Fatal(err)
	}
	m := tinyModel(5, 8)
	opt := newTestOptimizer("momentum")
	tr, err := New(Config{Model: m, Optimizer: opt})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := tr.Step(gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	tr.Close()

	st := CaptureTrainState(opt, 3)
	if st.SchedStep != 3 {
		t.Fatalf("captured schedule position = %d, want 3", st.SchedStep)
	}
	if len(st.Slots) == 0 {
		t.Fatal("momentum must export velocity slots")
	}
	var buf bytes.Buffer
	if err := SaveTrainingCheckpoint(&buf, m, st); err != nil {
		t.Fatal(err)
	}

	m2 := tinyModel(1234, 8)
	opt2 := newTestOptimizer("momentum")
	st2, err := LoadTrainingCheckpoint(bytes.NewReader(buf.Bytes()), m2)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Version != 2 || st2.Step != 3 || st2.SchedStep != 3 {
		t.Fatalf("restored state = %+v", st2)
	}
	if st2.Optimizer != opt.Name() {
		t.Fatalf("optimizer name %q, want %q", st2.Optimizer, opt.Name())
	}
	if len(st2.Slots) != len(st.Slots) {
		t.Fatalf("slot count %d, want %d", len(st2.Slots), len(st.Slots))
	}
	for i, s := range st2.Slots {
		if s.Var != st.Slots[i].Var || s.Name != st.Slots[i].Name {
			t.Fatalf("slot %d = %s/%s, want %s/%s", i, s.Var, s.Name, st.Slots[i].Var, st.Slots[i].Name)
		}
		if s.Data.MaxAbsDiff(st.Slots[i].Data) != 0 {
			t.Fatalf("slot %s/%s data differs after round trip", s.Var, s.Name)
		}
	}
	if err := RestoreTrainState(m2, opt2, st2); err != nil {
		t.Fatal(err)
	}
	if got := opt2.(*ScheduledOptimizer).Position(); got != 3 {
		t.Fatalf("restored schedule position = %d, want 3", got)
	}
}

// TestV1CheckpointStillLoads: the compatibility rule — a v1 (weights-only)
// stream loads into both LoadCheckpoint and LoadTrainingCheckpoint, the
// latter reporting Version 1 with zero training state.
func TestV1CheckpointStillLoads(t *testing.T) {
	m := tinyModel(6, 2)
	for _, v := range m.G.Variables() {
		v.Materialize()
	}
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2 := tinyModel(7, 2)
	st, err := LoadTrainingCheckpoint(bytes.NewReader(buf.Bytes()), m2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != 1 || st.Step != 0 || st.SchedStep != 0 || len(st.Slots) != 0 {
		t.Fatalf("v1 state = %+v, want zero training state", st)
	}
	for i, v := range m2.G.Variables() {
		if v.Value.MaxAbsDiff(m.G.Variables()[i].Value) != 0 {
			t.Fatalf("variable %s not restored from v1", v.Name)
		}
	}
}

// TestTrainingCheckpointDetectsCorruption flips one byte at every position
// of a small v2 checkpoint; no corruption may load successfully... except
// flips the CRC32 cannot see are impossible for single-byte flips, so every
// position must error.
func TestTrainingCheckpointDetectsCorruption(t *testing.T) {
	m := tinyModel(8, 2)
	opt := newTestOptimizer("momentum")
	var buf bytes.Buffer
	if err := SaveTrainingCheckpoint(&buf, m, CaptureTrainState(opt, 5)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Exhaustive single-byte flips are too slow for the full stream; probe a
	// spread of positions including the header, both sections, and the CRC.
	positions := []int{0, 4, 8, 16, 20, len(raw) / 4, len(raw) / 2, 3 * len(raw) / 4, len(raw) - 2, len(raw) - 1}
	for _, pos := range positions {
		t.Run(fmt.Sprintf("pos%d", pos), func(t *testing.T) {
			cp := append([]byte(nil), raw...)
			cp[pos] ^= 0xff
			m2 := tinyModel(8, 2)
			if _, err := LoadTrainingCheckpoint(bytes.NewReader(cp), m2); err == nil {
				t.Fatalf("flip at %d of %d loaded successfully", pos, len(raw))
			}
		})
	}
}

// TestTrainingCheckpointTruncation: every strict prefix must error, never
// panic or succeed.
func TestTrainingCheckpointTruncation(t *testing.T) {
	m := tinyModel(9, 2)
	opt := newTestOptimizer("lars")
	var buf bytes.Buffer
	if err := SaveTrainingCheckpoint(&buf, m, CaptureTrainState(opt, 2)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, n := range []int{0, 3, 4, 7, 8, 20, len(raw) / 3, len(raw) / 2, len(raw) - 5, len(raw) - 1} {
		m2 := tinyModel(9, 2)
		if _, err := LoadTrainingCheckpoint(bytes.NewReader(raw[:n]), m2); err == nil {
			t.Fatalf("prefix of %d/%d bytes loaded successfully", n, len(raw))
		}
	}
}
