package train

import (
	"bytes"
	"testing"
)

// FuzzLoadCheckpoint hardens the checkpoint parser: arbitrary bytes — and in
// particular truncations and bit-flips of real v1 and v2 streams, which the
// seed corpus covers — must never panic or over-allocate, and anything that
// does load must round-trip byte-for-byte.
func FuzzLoadCheckpoint(f *testing.F) {
	m := tinyModel(17, 2)
	for _, v := range m.G.Variables() {
		v.Materialize()
	}
	var v1 bytes.Buffer
	if err := SaveCheckpoint(&v1, m); err != nil {
		f.Fatal(err)
	}
	var v2 bytes.Buffer
	if err := SaveTrainingCheckpoint(&v2, m, CaptureTrainState(newTestOptimizer("momentum"), 7)); err != nil {
		f.Fatal(err)
	}
	for _, raw := range [][]byte{v1.Bytes(), v2.Bytes()} {
		f.Add(raw)
		for _, n := range []int{0, 4, 8, len(raw) / 2, len(raw) - 1} {
			f.Add(append([]byte(nil), raw[:n]...))
		}
		for _, pos := range []int{0, 8, len(raw) / 2, len(raw) - 1} {
			cp := append([]byte(nil), raw...)
			cp[pos] ^= 0x80
			f.Add(cp)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("DNPF"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m2 := tinyModel(17, 2)
		st, err := LoadTrainingCheckpoint(bytes.NewReader(data), m2)
		if err != nil {
			return
		}
		// Whatever loaded must save back to a loadable stream carrying the
		// same training state.
		var buf bytes.Buffer
		if st.Version >= 2 {
			if err := SaveTrainingCheckpoint(&buf, m2, st); err != nil {
				t.Fatalf("re-save of loaded checkpoint failed: %v", err)
			}
		} else {
			if err := SaveCheckpoint(&buf, m2); err != nil {
				t.Fatalf("re-save of loaded v1 checkpoint failed: %v", err)
			}
		}
		m3 := tinyModel(17, 2)
		st2, err := LoadTrainingCheckpoint(bytes.NewReader(buf.Bytes()), m3)
		if err != nil {
			t.Fatalf("re-saved checkpoint failed to load: %v", err)
		}
		if st2.Step != st.Step || st2.SchedStep != st.SchedStep || len(st2.Slots) != len(st.Slots) {
			t.Fatalf("round trip state mismatch: %+v vs %+v", st2, st)
		}
	})
}
