package train

import (
	"math"
	"sync"
	"testing"
	"time"

	"dnnperf/internal/data"
	"dnnperf/internal/graph"
	"dnnperf/internal/horovod"
	"dnnperf/internal/models"
	"dnnperf/internal/mpi"
	"dnnperf/internal/tensor"
)

func tinyModel(seed int64, batch int) *models.Model {
	return models.TinyCNN(models.Config{Batch: batch, ImageSize: 16, Classes: 4, Seed: seed})
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil model must error")
	}
}

func TestSingleProcessLossDecreases(t *testing.T) {
	m := tinyModel(1, 8)
	tr, err := New(Config{Model: m, IntraThreads: 2, LR: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	gen, err := data.NewLearnable(8, 3, 16, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := tr.Run(gen.Next, 30)
	if err != nil {
		t.Fatal(err)
	}
	first := (stats[0].Loss + stats[1].Loss + stats[2].Loss) / 3
	last := (stats[27].Loss + stats[28].Loss + stats[29].Loss) / 3
	if !(last < first*0.8) {
		t.Fatalf("loss must decrease on the learnable task: %.3f -> %.3f", first, last)
	}
	if math.IsNaN(last) {
		t.Fatal("loss is NaN")
	}
}

func TestAccuracyImproves(t *testing.T) {
	m := tinyModel(2, 16)
	tr, err := New(Config{Model: m, IntraThreads: 2, InterThreads: 2, LR: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	gen, err := data.NewLearnable(16, 3, 16, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := tr.Run(gen.Next, 40)
	if err != nil {
		t.Fatal(err)
	}
	lastAcc := (stats[37].Accuracy + stats[38].Accuracy + stats[39].Accuracy) / 3
	if lastAcc < 0.5 { // 4 classes; chance = 0.25
		t.Fatalf("accuracy after training %.2f, want > 0.5", lastAcc)
	}
}

func TestThroughputSummary(t *testing.T) {
	stats := []StepStats{
		{Images: 8, Duration: time.Second}, // warm-up, skipped
		{Images: 8, Duration: time.Second / 2},
		{Images: 8, Duration: time.Second / 2},
	}
	tp := Throughput(stats)
	if tp < 15.9 || tp > 16.1 {
		t.Fatalf("throughput = %g, want 16", tp)
	}
	if Throughput(nil) != 0 {
		t.Fatal("empty stats must give 0")
	}
}

// mlpModel builds a small batch-norm-free model (dense-relu-dense over
// flattened images). Without batch statistics, data-parallel training on
// half batches is mathematically identical to serial training on the full
// batch, enabling an exact equivalence test.
func mlpModel(seed int64, batch int) *models.Model {
	g := graph.New()
	rng := tensor.NewRNG(seed)
	in := 3 * 16 * 16
	x := g.Input("images", batch, 3, 16, 16)
	flat := g.Apply(graph.FlattenOp{}, "flatten", x)
	w1 := g.Variable("w1", []int{in, 32}, graph.ConstInit(rng.HeInit(in, in, 32)))
	b1 := g.Variable("b1", []int{32}, graph.Zeros)
	h := g.Apply(graph.DenseOp{}, "fc1", flat, w1, b1)
	a := g.Apply(graph.ReLUOp{}, "relu", h)
	w2 := g.Variable("w2", []int{32, 4}, graph.ConstInit(rng.HeInit(32, 32, 4)))
	b2 := g.Variable("b2", []int{4}, graph.Zeros)
	logits := g.Apply(graph.DenseOp{}, "fc2", a, w2, b2)
	return &models.Model{Name: "mlp", G: g, Input: x, Logits: logits}
}

// TestDataParallelMatchesSerial is the key functional integration test:
// training with 2 Horovod ranks over the in-process MPI world must equal
// single-process training on the combined batch (same effective gradient).
func TestDataParallelMatchesSerial(t *testing.T) {
	const (
		batch = 4
		steps = 3
		lr    = 0.05
	)
	// Fixed batches shared by both setups: ranks each take half.
	genAll, _ := data.NewLearnable(2*batch, 3, 16, 4, 21)
	batches := make([]data.Batch, steps)
	for i := range batches {
		batches[i] = genAll.Next()
	}
	half := func(b data.Batch, r int) data.Batch {
		imgs := b.Images.Data()
		n := len(imgs) / 2
		sub := imgs[r*n : (r+1)*n]
		shape := append([]int{batch}, b.Images.Shape()[1:]...)
		cp := make([]float32, n)
		copy(cp, sub)
		return data.Batch{
			Images: tensor.FromSlice(cp, shape...),
			Labels: append([]int(nil), b.Labels[r*batch:(r+1)*batch]...),
		}
	}

	// Serial reference on the full batch.
	ref := mlpModel(5, 2*batch)
	refTr, err := New(Config{Model: ref, LR: lr})
	if err != nil {
		t.Fatal(err)
	}
	defer refTr.Close()
	for _, b := range batches {
		if _, err := refTr.Step(b); err != nil {
			t.Fatal(err)
		}
	}

	// Two-rank data-parallel run with identical initial weights (same seed).
	w, _ := mpi.NewWorld(2)
	ranks := make([]*models.Model, 2)
	err = w.Run(func(c *mpi.Comm) error {
		m := mlpModel(5, batch) // same seed: identical init
		ranks[c.Rank()] = m
		eng := horovod.NewEngine(c, horovod.Config{CycleTime: 200 * time.Microsecond, Average: true})
		tr, err := New(Config{Model: m, LR: lr, Engine: eng, Rank: c.Rank()})
		if err != nil {
			return err
		}
		defer tr.Close()
		for _, b := range batches {
			if _, err := tr.Step(half(b, c.Rank())); err != nil {
				return err
			}
		}
		return eng.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}

	// Both ranks' weights must match each other and the serial reference.
	v0, v1 := ranks[0].G.Variables(), ranks[1].G.Variables()
	vr := ref.G.Variables()
	for i := range v0 {
		if d := v0[i].Value.MaxAbsDiff(v1[i].Value); d > 1e-5 {
			t.Fatalf("ranks diverged on %s by %g", v0[i].Name, d)
		}
		if d := v0[i].Value.MaxAbsDiff(vr[i].Value); d > 1e-4 {
			t.Fatalf("data-parallel differs from serial on %s by %g", v0[i].Name, d)
		}
	}
}

// TestDistributedTrainingReducesLoss exercises 4 ranks end to end.
func TestDistributedTrainingReducesLoss(t *testing.T) {
	const ranks = 4
	w, _ := mpi.NewWorld(ranks)
	losses := make([][]float64, ranks)
	var mu sync.Mutex
	err := w.Run(func(c *mpi.Comm) error {
		m := tinyModel(9, 4)
		eng := horovod.NewEngine(c, horovod.Config{CycleTime: 200 * time.Microsecond, Average: true})
		tr, err := New(Config{Model: m, LR: 0.08, Engine: eng, Rank: c.Rank()})
		if err != nil {
			return err
		}
		defer tr.Close()
		gen, err := data.NewLearnable(4, 3, 16, 4, data.Shard(31, c.Rank()))
		if err != nil {
			return err
		}
		stats, err := tr.Run(gen.Next, 25)
		if err != nil {
			return err
		}
		mu.Lock()
		for _, s := range stats {
			losses[c.Rank()] = append(losses[c.Rank()], s.Loss)
		}
		mu.Unlock()
		return eng.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, ls := range losses {
		first := (ls[0] + ls[1]) / 2
		last := (ls[len(ls)-1] + ls[len(ls)-2]) / 2
		if last >= first {
			t.Fatalf("rank %d loss did not decrease: %.3f -> %.3f", r, first, last)
		}
	}
}
