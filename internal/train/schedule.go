package train

import (
	"fmt"
	"math"

	"dnnperf/internal/graph"
	"dnnperf/internal/tensor"
)

// Learning-rate schedules for large-batch training. The paper's batch-size
// discussion leans on Goyal et al. [22] ("Accurate, Large Minibatch SGD"),
// whose recipe — linear scaling with gradual warmup, then step decay — is
// implemented here.

// Schedule yields the learning rate for a (0-based) step.
type Schedule interface {
	// LR returns the learning rate to use at step.
	LR(step int) float32
	// Name identifies the schedule in logs.
	Name() string
}

// Constant is a fixed learning rate.
type Constant struct{ Rate float32 }

// LR implements Schedule.
func (c Constant) LR(int) float32 { return c.Rate }

// Name implements Schedule.
func (c Constant) Name() string { return "constant" }

// Warmup ramps linearly from Start to Target over Steps steps, then defers
// to Next — Goyal et al.'s "gradual warmup" that makes large global batches
// trainable.
type Warmup struct {
	Start  float32
	Target float32
	Steps  int
	Next   Schedule
}

// LR implements Schedule.
func (w Warmup) LR(step int) float32 {
	if w.Steps > 0 && step < w.Steps {
		f := float32(step+1) / float32(w.Steps)
		return w.Start + (w.Target-w.Start)*f
	}
	if w.Next != nil {
		return w.Next.LR(step - w.Steps)
	}
	return w.Target
}

// Name implements Schedule.
func (w Warmup) Name() string { return "warmup" }

// StepDecay multiplies Base by Factor after each milestone step.
type StepDecay struct {
	Base       float32
	Factor     float32
	Milestones []int
}

// LR implements Schedule.
func (s StepDecay) LR(step int) float32 {
	lr := s.Base
	for _, m := range s.Milestones {
		if step >= m {
			lr *= s.Factor
		}
	}
	return lr
}

// Name implements Schedule.
func (s StepDecay) Name() string { return "step-decay" }

// Cosine anneals from Base to Min over Period steps.
type Cosine struct {
	Base   float32
	Min    float32
	Period int
}

// LR implements Schedule.
func (c Cosine) LR(step int) float32 {
	if c.Period <= 0 {
		return c.Base
	}
	if step >= c.Period {
		return c.Min
	}
	f := 0.5 * (1 + math.Cos(math.Pi*float64(step)/float64(c.Period)))
	return c.Min + (c.Base-c.Min)*float32(f)
}

// Name implements Schedule.
func (c Cosine) Name() string { return "cosine" }

// LinearScaled returns the Goyal et al. large-batch recipe for a reference
// learning rate tuned at refBatch: scale linearly to the actual global
// batch and warm up over warmupSteps.
func LinearScaled(refLR float32, refBatch, globalBatch, warmupSteps int, after Schedule) (Schedule, error) {
	if refBatch < 1 || globalBatch < 1 {
		return nil, fmt.Errorf("train: invalid batch sizes %d/%d", refBatch, globalBatch)
	}
	target := refLR * float32(globalBatch) / float32(refBatch)
	if after == nil {
		after = Constant{Rate: target}
	}
	return Warmup{Start: refLR, Target: target, Steps: warmupSteps, Next: after}, nil
}

// ScheduledOptimizer wraps an optimizer so its learning rate follows a
// schedule. It supports the optimizers in this package.
type ScheduledOptimizer struct {
	Sched Schedule
	Inner Optimizer
	step  int
}

// Name implements Optimizer.
func (s *ScheduledOptimizer) Name() string { return s.Inner.Name() + "+" + s.Sched.Name() }

// Position returns the schedule step the next Step call will use, so a
// checkpoint can capture the LR-schedule position.
func (s *ScheduledOptimizer) Position() int64 { return int64(s.step) }

// SetPosition moves the schedule to step (checkpoint restore).
func (s *ScheduledOptimizer) SetPosition(step int64) { s.step = int(step) }

// ExportState implements StatefulOptimizer by delegating to the inner
// optimizer, if it is stateful.
func (s *ScheduledOptimizer) ExportState() []StateSlot {
	if so, ok := s.Inner.(StatefulOptimizer); ok {
		return so.ExportState()
	}
	return nil
}

// ImportState implements StatefulOptimizer by delegating to the inner
// optimizer, if it is stateful.
func (s *ScheduledOptimizer) ImportState(g *graph.Graph, slots []StateSlot) error {
	if so, ok := s.Inner.(StatefulOptimizer); ok {
		return so.ImportState(g, slots)
	}
	if len(slots) > 0 {
		return fmt.Errorf("train: %s cannot import %d optimizer slots", s.Name(), len(slots))
	}
	return nil
}

// Step implements Optimizer: set the inner optimizer's rate, then update.
func (s *ScheduledOptimizer) Step(pool *tensor.Pool, g *graph.Graph) {
	lr := s.Sched.LR(s.step)
	s.step++
	switch o := s.Inner.(type) {
	case *SGD:
		o.LR = lr
	case *Momentum:
		o.LR = lr
	case *LARS:
		o.LR = lr
	}
	s.Inner.Step(pool, g)
}
