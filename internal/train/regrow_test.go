package train

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dnnperf/internal/models"
	"dnnperf/internal/mpi"
	"dnnperf/internal/telemetry"
)

// checkCRCsAgree is the split-brain probe: every rank that finished the run
// must fingerprint the identical serialized model + training state.
func checkCRCsAgree(t *testing.T, results []*SupervisorResult) {
	t.Helper()
	var want uint32
	for r, res := range results {
		if res == nil {
			continue
		}
		if res.WeightsCRC == 0 {
			t.Fatalf("rank %d: zero weights CRC", r)
		}
		if want == 0 {
			want = res.WeightsCRC
		} else if res.WeightsCRC != want {
			t.Fatalf("rank %d: weights CRC %08x != %08x — split brain", r, res.WeightsCRC, want)
		}
	}
}

// TestSuperviseRegrowAfterRestart: a 3-rank job loses rank 2, shrinks to 2,
// then the dead rank's process restarts as a Joiner and the world grows back
// to 3 — the full kill -> shrink -> rejoin -> regrow round trip in-process.
func TestSuperviseRegrowAfterRestart(t *testing.T) {
	w, err := mpi.NewWorldOpts(3, mpi.WorldOptions{RecvTimeout: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	const steps, dieAfter = 8, 3
	health := telemetry.NewHealth()

	var wg sync.WaitGroup
	results := make([]*SupervisorResult, 3)
	errs := make([]error, 3)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := elasticConfig(w.Comm(r), steps, dir)
			cfg.RegrowWait = 20 * time.Second
			if r == 0 {
				cfg.Health = health
			}
			results[r], errs[r] = Supervise(cfg)
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if derr := runDoomedRank(t, w.Comm(2), 2, dieAfter); derr != nil {
			errs[2] = derr
			return
		}
		// The process restarts: a fresh endpoint for the same root rank,
		// supervised as a Joiner. The admission may race the survivors'
		// failure detection; RetryRejected inside the supervisor absorbs it.
		cfg := elasticConfig(w.Rejoin(2), steps, dir)
		cfg.Joiner = true
		cfg.RejoinTimeout = 20 * time.Second
		results[2], errs[2] = Supervise(cfg)
	}()
	wg.Wait()

	for r := 0; r < 3; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d: %v", r, errs[r])
		}
		res := results[r]
		if res.Outcome != OutcomeRecovered {
			t.Fatalf("rank %d: outcome %v, want recovered", r, res.Outcome)
		}
		if res.WorldSize != 3 {
			t.Fatalf("rank %d: final world size %d, want 3 (regrown)", r, res.WorldSize)
		}
		if res.FinalStep != steps {
			t.Fatalf("rank %d: final step %d, want %d", r, res.FinalStep, steps)
		}
	}
	for r := 0; r < 2; r++ {
		res := results[r]
		if len(res.Recoveries) != 1 || res.Recoveries[0].OldSize != 3 || res.Recoveries[0].NewSize != 2 {
			t.Fatalf("survivor %d: recoveries %+v, want one 3 -> 2 shrink", r, res.Recoveries)
		}
		if len(res.Regrows) == 0 {
			t.Fatalf("survivor %d: no regrow recorded", r)
		}
		last := res.Regrows[len(res.Regrows)-1]
		if last.NewSize != 3 || len(last.Joined) != 1 || last.Joined[0] != 2 {
			t.Fatalf("survivor %d: last regrow %+v, want -> 3 with joined [2]", r, last)
		}
	}
	joiner := results[2]
	if len(joiner.Recoveries) != 0 {
		t.Fatalf("joiner recorded recoveries %+v; a joiner only regrows", joiner.Recoveries)
	}
	if len(joiner.Regrows) != 1 || joiner.Regrows[0].Joined[0] != 2 {
		t.Fatalf("joiner regrows %+v, want exactly its own admission", joiner.Regrows)
	}
	checkCRCsAgree(t, results)
	// Rank 0's /healthz world trajectory: full, shrunk, regrown.
	if hist := health.WorldHistory(); len(hist) != 3 || hist[0] != 3 || hist[1] != 2 || hist[2] != 3 {
		t.Fatalf("world history %v, want [3 2 3]", hist)
	}
}

// TestSuperviseQuorumParksMinority: a 3-rank job partitions 2|1. The majority
// pair shrinks and keeps training; the isolated rank must NOT — it lacks
// quorum, parks without a single optimizer update, and is readmitted after
// the partition heals. This is the split-brain elimination guarantee.
func TestSuperviseQuorumParksMinority(t *testing.T) {
	w, err := mpi.NewWorldOpts(3, mpi.WorldOptions{RecvTimeout: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	const steps = 8

	fts := make([]*mpi.FaultTransport, 3)
	comms := make([]*mpi.Comm, 3)
	for r := 0; r < 3; r++ {
		fts[r] = mpi.NewFaultTransport(w.Comm(r).Endpoint(), mpi.FaultConfig{})
		comms[r] = mpi.NewComm(fts[r])
	}
	var isolate, heal sync.Once
	hook := func(rank int) func(int64, StepStats) {
		return func(step int64, _ StepStats) {
			if rank == 2 && step == 3 {
				isolate.Do(func() {
					fts[0].Partition(2)
					fts[1].Partition(2)
					fts[2].PartitionAll()
				})
			}
			// Rank 0 first reaches step 5 after the majority's recovery
			// (the failure lands at step 4), so the heal is post-shrink.
			if rank == 0 && step == 5 {
				heal.Do(func() {
					for _, ft := range fts {
						ft.HealAll()
					}
				})
			}
		}
	}

	var wg sync.WaitGroup
	results := make([]*SupervisorResult, 3)
	errs := make([]error, 3)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := elasticConfig(comms[r], steps, dir)
			cfg.RegrowWait = 20 * time.Second
			cfg.RejoinTimeout = 25 * time.Second
			cfg.OnStep = hook(r)
			results[r], errs[r] = Supervise(cfg)
		}(r)
	}
	wg.Wait()

	for r := 0; r < 3; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d: %v", r, errs[r])
		}
		if results[r].WorldSize != 3 || results[r].FinalStep != steps {
			t.Fatalf("rank %d: world %d step %d, want 3/%d",
				r, results[r].WorldSize, results[r].FinalStep, steps)
		}
	}
	minority := results[2]
	if !minority.Parked {
		t.Fatal("isolated rank did not park")
	}
	if len(minority.Recoveries) != 0 {
		t.Fatalf("isolated rank recorded recoveries %+v — it trained without quorum", minority.Recoveries)
	}
	if len(minority.Regrows) != 1 {
		t.Fatalf("isolated rank regrows %+v, want exactly its readmission", minority.Regrows)
	}
	for r := 0; r < 2; r++ {
		res := results[r]
		if len(res.Recoveries) != 1 || res.Recoveries[0].NewSize != 2 {
			t.Fatalf("majority rank %d: recoveries %+v, want one shrink to 2", r, res.Recoveries)
		}
		last := res.Regrows[len(res.Regrows)-1]
		if last.NewSize != 3 || len(last.Joined) != 1 || last.Joined[0] != 2 {
			t.Fatalf("majority rank %d: last regrow %+v, want readmission of 2", r, last)
		}
	}
	checkCRCsAgree(t, results)
}

// TestRegrowEndToEndTCP is the acceptance scenario over real sockets: a
// 4-rank TCP job loses rank 2 to an abrupt abort, shrinks to 3 under quorum,
// the killed process restarts and rejoins through the TCP rendezvous, and
// the world returns to 4 with every rank resuming bit-exactly (equal CRCs).
func TestRegrowEndToEndTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP regrow integration in -short mode")
	}
	topts := mpi.TCPOptions{
		RecvTimeout:  time.Second,
		DrainTimeout: 200 * time.Millisecond,
	}
	comms, err := mpi.StartLocalTCPJobOpts(4, topts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range comms {
			c.Close()
		}
	}()
	// Rank 0's listen address doubles as the rejoin rendezvous.
	rootAddr := comms[0].PeerAddrs()[0]
	dir := t.TempDir()
	const steps, dieAfter = 10, 3

	var wg sync.WaitGroup
	results := make([]*SupervisorResult, 4)
	errs := make([]error, 4)
	for _, r := range []int{0, 1, 3} {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := elasticConfig(comms[r], steps, dir)
			cfg.RegrowWait = 20 * time.Second
			results[r], errs[r] = Supervise(cfg)
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if derr := runDoomedRank(t, comms[2], 2, dieAfter); derr != nil {
			errs[2] = derr
			return
		}
		jc, jerr := mpi.RejoinTCP(2, 4, rootAddr, "127.0.0.1:0", topts)
		if jerr != nil {
			errs[2] = jerr
			return
		}
		defer jc.Close()
		cfg := elasticConfig(jc, steps, dir)
		cfg.Joiner = true
		cfg.RejoinTimeout = 20 * time.Second
		results[2], errs[2] = Supervise(cfg)
	}()
	wg.Wait()

	for r := 0; r < 4; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d: %v", r, errs[r])
		}
		res := results[r]
		if res.Outcome != OutcomeRecovered {
			t.Fatalf("rank %d: outcome %v, want recovered", r, res.Outcome)
		}
		if res.WorldSize != 4 {
			t.Fatalf("rank %d: final world size %d, want 4", r, res.WorldSize)
		}
		if res.FinalStep != steps {
			t.Fatalf("rank %d: final step %d, want %d", r, res.FinalStep, steps)
		}
	}
	for _, r := range []int{0, 1, 3} {
		res := results[r]
		if len(res.Recoveries) != 1 || res.Recoveries[0].OldSize != 4 || res.Recoveries[0].NewSize != 3 {
			t.Fatalf("survivor %d: recoveries %+v, want one 4 -> 3 shrink", r, res.Recoveries)
		}
		last := res.Regrows[len(res.Regrows)-1]
		if last.NewSize != 4 || len(last.Joined) != 1 || last.Joined[0] != 2 {
			t.Fatalf("survivor %d: last regrow %+v, want readmission of 2", r, last)
		}
	}
	joiner := results[2]
	if len(joiner.Recoveries) != 0 || len(joiner.Regrows) != 1 {
		t.Fatalf("joiner events: recoveries %+v regrows %+v", joiner.Recoveries, joiner.Regrows)
	}
	if joiner.Rank != 2 {
		t.Fatalf("joiner landed on rank %d, want its original slot 2", joiner.Rank)
	}
	checkCRCsAgree(t, results)
}

// writeCkpt writes a valid v2 checkpoint for step into dir.
func writeCkpt(t *testing.T, dir string, step int64) string {
	t.Helper()
	m := tinyModel(13, 4)
	path := filepath.Join(dir, ckptFileName(step))
	if err := SaveTrainingCheckpointFile(path, m, CaptureTrainState(&Momentum{LR: 0.05, Mu: 0.9}, step)); err != nil {
		t.Fatal(err)
	}
	return path
}

func ckptNames(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "ckpt-*.dnpf"))
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(paths))
	for i, p := range paths {
		names[i] = filepath.Base(p)
	}
	return names
}

func gcModel() *models.Model { return tinyModel(13, 4) }

// TestGCCheckpointsKeepsNewestValid: with five valid checkpoints and keep=3,
// GC removes exactly the two oldest.
func TestGCCheckpointsKeepsNewestValid(t *testing.T) {
	dir := t.TempDir()
	for _, step := range []int64{2, 4, 6, 8, 10} {
		writeCkpt(t, dir, step)
	}
	removed, err := GCCheckpoints(dir, 3, gcModel)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 {
		t.Fatalf("removed %v, want the two oldest", removed)
	}
	want := []string{ckptFileName(6), ckptFileName(8), ckptFileName(10)}
	got := ckptNames(t, dir)
	if len(got) != len(want) {
		t.Fatalf("remaining %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("remaining %v, want %v", got, want)
		}
	}
	// Everything kept still loads.
	for _, name := range got {
		if _, err := LoadTrainingCheckpointFile(filepath.Join(dir, name), gcModel()); err != nil {
			t.Fatalf("kept checkpoint %s no longer valid: %v", name, err)
		}
	}
}

// TestGCCheckpointsCorruptNewestKeepsFallback: a torn newest file must not
// trick the GC into deleting the valid fallbacks that recovery would need —
// validity, not recency, drives retention.
func TestGCCheckpointsCorruptNewestKeepsFallback(t *testing.T) {
	dir := t.TempDir()
	for _, step := range []int64{2, 4, 6} {
		writeCkpt(t, dir, step)
	}
	// Step 8 is the newest file but torn mid-write.
	torn := filepath.Join(dir, ckptFileName(8))
	if err := os.WriteFile(torn, []byte("torn checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	removed, err := GCCheckpoints(dir, 2, gcModel)
	if err != nil {
		t.Fatal(err)
	}
	// Newest two VALID are 6 and 4; only 2 is older than both. The torn
	// file is newer than the cut and stays.
	if len(removed) != 1 || filepath.Base(removed[0]) != ckptFileName(2) {
		t.Fatalf("removed %v, want only %s", removed, ckptFileName(2))
	}
	// The corruption-fallback chain still works end to end: the torn file
	// fails to load and the GC-surviving step-6 file restores.
	if _, err := LoadTrainingCheckpointFile(torn, gcModel()); err == nil {
		t.Fatal("torn checkpoint unexpectedly loads")
	}
	st, err := LoadTrainingCheckpointFile(filepath.Join(dir, ckptFileName(6)), gcModel())
	if err != nil {
		t.Fatalf("fallback checkpoint: %v", err)
	}
	if st.Step != 6 {
		t.Fatalf("fallback restored step %d, want 6", st.Step)
	}
}

// TestGCCheckpointsFewerValidThanKeep: when the directory holds fewer valid
// checkpoints than the retention target, nothing is deleted.
func TestGCCheckpointsFewerValidThanKeep(t *testing.T) {
	dir := t.TempDir()
	writeCkpt(t, dir, 2)
	for _, step := range []int64{4, 6} {
		p := filepath.Join(dir, ckptFileName(step))
		if err := os.WriteFile(p, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := GCCheckpoints(dir, 3, gcModel)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 0 {
		t.Fatalf("removed %v, want nothing (only one valid checkpoint)", removed)
	}
	if got := ckptNames(t, dir); len(got) != 3 {
		t.Fatalf("remaining %v, want all three files", got)
	}
}
