package train

import (
	"math"
	"testing"

	"dnnperf/internal/data"
	"dnnperf/internal/tensor"
)

// newLearnableGen adapts data.Learnable for tests.
func newLearnableGen(batch int, seed int64) (func() data.Batch, error) {
	g, err := data.NewLearnable(batch, 3, 16, 4, seed)
	if err != nil {
		return nil, err
	}
	return g.Next, nil
}

func TestConstantSchedule(t *testing.T) {
	c := Constant{Rate: 0.1}
	if c.LR(0) != 0.1 || c.LR(1000) != 0.1 {
		t.Fatal("constant must not vary")
	}
}

func TestWarmupRampsThenDefers(t *testing.T) {
	w := Warmup{Start: 0.01, Target: 0.1, Steps: 9, Next: Constant{Rate: 0.1}}
	if w.LR(0) <= 0.01 || w.LR(0) >= 0.1 {
		t.Fatalf("step 0 lr %v", w.LR(0))
	}
	for s := 1; s < 9; s++ {
		if w.LR(s) <= w.LR(s-1) {
			t.Fatalf("warmup not increasing at %d", s)
		}
	}
	if w.LR(9) != 0.1 || w.LR(100) != 0.1 {
		t.Fatal("post-warmup must hold target")
	}
}

func TestStepDecayMilestones(t *testing.T) {
	s := StepDecay{Base: 1, Factor: 0.1, Milestones: []int{10, 20}}
	if s.LR(0) != 1 || s.LR(9) != 1 {
		t.Fatal("pre-milestone")
	}
	if d := s.LR(10) - 0.1; math.Abs(float64(d)) > 1e-7 {
		t.Fatalf("after first milestone: %v", s.LR(10))
	}
	if d := s.LR(25) - 0.01; math.Abs(float64(d)) > 1e-8 {
		t.Fatalf("after second milestone: %v", s.LR(25))
	}
}

func TestCosineAnneals(t *testing.T) {
	c := Cosine{Base: 1, Min: 0.1, Period: 100}
	if c.LR(0) != 1 {
		t.Fatalf("start %v", c.LR(0))
	}
	if c.LR(100) != 0.1 || c.LR(500) != 0.1 {
		t.Fatal("end must clamp to Min")
	}
	mid := c.LR(50)
	if mid < 0.5 || mid > 0.6 { // (1+0.1)/2 = 0.55
		t.Fatalf("midpoint %v", mid)
	}
	for s := 1; s <= 100; s++ {
		if c.LR(s) > c.LR(s-1)+1e-7 {
			t.Fatalf("not monotone at %d", s)
		}
	}
}

func TestLinearScaledRecipe(t *testing.T) {
	// Reference 0.1 at batch 256; global batch 8192 => target 3.2.
	sched, err := LinearScaled(0.1, 256, 8192, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lr := sched.LR(100); math.Abs(float64(lr-3.2)) > 1e-5 {
		t.Fatalf("scaled target %v, want 3.2", lr)
	}
	if sched.LR(0) >= sched.LR(4) {
		t.Fatal("warmup must ramp")
	}
	if _, err := LinearScaled(0.1, 0, 8192, 5, nil); err == nil {
		t.Fatal("invalid batch must error")
	}
}

func TestScheduledOptimizerDrivesLR(t *testing.T) {
	m, w := quadGraph()
	w.Materialize()
	sched := &ScheduledOptimizer{
		Sched: StepDecay{Base: 1, Factor: 0.5, Milestones: []int{1}},
		Inner: &SGD{},
	}
	// Step 0 at lr 1: w -= grad.
	w.Grad.Fill(1)
	sched.Step(tensor.Serial, m.G)
	afterFirst := w.Value.At(0, 1) // was 0, now -1
	if afterFirst != -1 {
		t.Fatalf("step 0 moved %v, want -1", afterFirst)
	}
	// Step 1 at lr 0.5.
	w.Grad.Fill(1)
	sched.Step(tensor.Serial, m.G)
	if d := w.Value.At(0, 1) - (-1.5); math.Abs(float64(d)) > 1e-6 {
		t.Fatalf("step 1 at decayed lr: %v", w.Value.At(0, 1))
	}
	if sched.Name() == "" {
		t.Fatal("name")
	}
}

func TestScheduledMomentumTrainingConverges(t *testing.T) {
	m := tinyModel(21, 8)
	sched, _ := LinearScaled(0.01, 8, 8, 3, StepDecay{Base: 0.05, Factor: 0.5, Milestones: []int{15}})
	tr, err := New(Config{Model: m, Optimizer: &ScheduledOptimizer{Sched: sched, Inner: NewMomentum(0.05, 0.9)}, LR: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	gen, err := newLearnableGen(8, 23)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := tr.Run(gen, 20)
	if err != nil {
		t.Fatal(err)
	}
	if stats[len(stats)-1].Loss >= stats[0].Loss {
		t.Fatalf("scheduled training did not converge: %.3f -> %.3f",
			stats[0].Loss, stats[len(stats)-1].Loss)
	}
}
