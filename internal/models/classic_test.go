package models

import (
	"testing"

	"dnnperf/internal/graph"
	"dnnperf/internal/tensor"
)

func TestClassicModelParamCounts(t *testing.T) {
	cases := []struct {
		name         string
		pMinM, pMaxM float64
	}{
		{"resnet18", 11.0, 12.5}, // 11.7M
		{"resnet34", 21.0, 22.5}, // 21.8M
		{"alexnet", 57.0, 65.0},  // ~61M
		{"vgg16", 132.0, 142.0},  // 138.4M
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			b, err := Get(tc.name)
			if err != nil {
				t.Fatal(err)
			}
			m := b(Config{Batch: 1})
			if err := m.G.Validate(); err != nil {
				t.Fatal(err)
			}
			pm := float64(m.Params()) / 1e6
			if pm < tc.pMinM || pm > tc.pMaxM {
				t.Errorf("params = %.2fM, want [%.1f, %.1f]", pm, tc.pMinM, tc.pMaxM)
			}
		})
	}
}

func TestVGGFLOPsExceedResNet50(t *testing.T) {
	vgg := VGG16(Config{Batch: 1})
	rn := ResNet50(Config{Batch: 1})
	// VGG-16 (15.5 GMACs) is ~3.8x ResNet-50 (4.1 GMACs) at 224px.
	ratio := float64(vgg.FwdFLOPs()) / float64(rn.FwdFLOPs())
	if ratio < 3.0 || ratio > 4.5 {
		t.Fatalf("VGG16/RN50 FLOP ratio %.2f, want ~3.8x", ratio)
	}
}

func TestParamToComputeProfiles(t *testing.T) {
	// AlexNet: heavyweight parameters, lightweight compute — the opposite
	// of ResNet-50. Gradient-bytes per GFLOP separates the two regimes.
	alex := AlexNet(Config{Batch: 1})
	rn := ResNet50(Config{Batch: 1})
	alexRatio := float64(alex.GradBytes()) / float64(alex.FwdFLOPs())
	rnRatio := float64(rn.GradBytes()) / float64(rn.FwdFLOPs())
	if alexRatio < 5*rnRatio {
		t.Fatalf("AlexNet comm/compute ratio (%.3g) must dwarf ResNet-50's (%.3g)", alexRatio, rnRatio)
	}
}

func TestBasicBlockOrdering(t *testing.T) {
	r18 := ResNet18(Config{Batch: 1})
	r34 := ResNet34(Config{Batch: 1})
	r50 := ResNet50(Config{Batch: 1})
	if !(r18.Params() < r34.Params() && r34.Params() < r50.Params()) {
		t.Fatal("parameter ordering 18 < 34 < 50 violated")
	}
	if !(r18.FwdFLOPs() < r34.FwdFLOPs()) {
		t.Fatal("FLOPs ordering 18 < 34 violated")
	}
}

func TestAlexNetForwardBackwardSmall(t *testing.T) {
	// A reduced AlexNet must really execute: input must survive the three
	// stride-reducing pools, so use 67px (67->15->7->3 after convs/pools).
	m := AlexNet(Config{Batch: 2, ImageSize: 67, Classes: 5, Seed: 2})
	rng := tensor.NewRNG(1)
	ex := graph.NewExecutor(m.G, tensor.Serial, 1)
	st, err := ex.Forward(map[*graph.Node]*tensor.Tensor{m.Input: rng.Uniform(0, 1, 2, 3, 67, 67)})
	if err != nil {
		t.Fatal(err)
	}
	logits := st.Value(m.Logits)
	if !tensor.ShapeEq(logits.Shape(), []int{2, 5}) {
		t.Fatalf("logits shape %v", logits.Shape())
	}
	_, grad := tensor.CrossEntropyLoss(tensor.Serial, logits, []int{0, 3})
	m.G.ZeroGrads()
	if err := ex.Backward(st, m.Logits, grad); err != nil {
		t.Fatal(err)
	}
	zero := 0
	for _, v := range m.G.Variables() {
		if v.Grad.L2Norm() == 0 {
			zero++
		}
	}
	// Dropout can zero a rare sliver, but the network must be trainable.
	if zero > 2 {
		t.Fatalf("%d variables received no gradient", zero)
	}
}

func TestVGGSmallForward(t *testing.T) {
	// 32px survives VGG's five 2x pools (32->16->8->4->2->1).
	m := VGG16(Config{Batch: 1, ImageSize: 32, Classes: 3, Seed: 9})
	rng := tensor.NewRNG(2)
	ex := graph.NewExecutor(m.G, tensor.Serial, 1)
	st, err := ex.Forward(map[*graph.Node]*tensor.Tensor{m.Input: rng.Uniform(0, 1, 1, 3, 32, 32)})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEq(st.Value(m.Logits).Shape(), []int{1, 3}) {
		t.Fatalf("logits shape %v", st.Value(m.Logits).Shape())
	}
}

func TestResNet18TrainsFunctionally(t *testing.T) {
	m := ResNet18(Config{Batch: 2, ImageSize: 32, Classes: 4, Seed: 3})
	rng := tensor.NewRNG(4)
	ex := graph.NewExecutor(m.G, tensor.Serial, 1)
	st, err := ex.Forward(map[*graph.Node]*tensor.Tensor{m.Input: rng.Uniform(0, 1, 2, 3, 32, 32)})
	if err != nil {
		t.Fatal(err)
	}
	loss, grad := tensor.CrossEntropyLoss(tensor.Serial, st.Value(m.Logits), []int{1, 2})
	if loss <= 0 {
		t.Fatal("loss must be positive")
	}
	m.G.ZeroGrads()
	if err := ex.Backward(st, m.Logits, grad); err != nil {
		t.Fatal(err)
	}
	for _, v := range m.G.Variables() {
		if v.Grad.L2Norm() == 0 {
			t.Fatalf("variable %s has zero gradient", v.Name)
		}
	}
}

func TestClassicModelsRegistered(t *testing.T) {
	for _, n := range []string{"alexnet", "vgg16", "resnet18", "resnet34"} {
		if _, err := Get(n); err != nil {
			t.Fatalf("%s not registered: %v", n, err)
		}
		if DisplayName(n) == "" {
			t.Fatalf("%s has no display name", n)
		}
	}
}

func TestGoogLeNetParamsAndBranchiness(t *testing.T) {
	m := GoogLeNet(Config{Batch: 1})
	if err := m.G.Validate(); err != nil {
		t.Fatal(err)
	}
	pm := float64(m.Params()) / 1e6
	if pm < 5.5 || pm > 7.5 { // torchvision googlenet (no aux): 6.6M
		t.Errorf("GoogLeNet params = %.2fM, want ~6.6M", pm)
	}
	gf := float64(m.FwdFLOPs()) / 1e9
	if gf < 2.5 || gf > 4.5 { // ~3 GFLOPs
		t.Errorf("GoogLeNet fwd GFLOPs = %.2f, want ~3", gf)
	}
	// Branchier than ResNet: each module fans into 4 branches.
	maxFan := 0
	for _, n := range m.G.Nodes {
		if c := n.Consumers(); c > maxFan {
			maxFan = c
		}
	}
	if maxFan < 4 {
		t.Errorf("GoogLeNet max fan-out %d, want >= 4", maxFan)
	}
}

func TestGoogLeNetForwardSmall(t *testing.T) {
	m := GoogLeNet(Config{Batch: 1, ImageSize: 64, Classes: 5, Seed: 2})
	rng := tensor.NewRNG(3)
	ex := graph.NewExecutor(m.G, tensor.Serial, 2)
	st, err := ex.Forward(map[*graph.Node]*tensor.Tensor{m.Input: rng.Uniform(0, 1, 1, 3, 64, 64)})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEq(st.Value(m.Logits).Shape(), []int{1, 5}) {
		t.Fatalf("logits %v", st.Value(m.Logits).Shape())
	}
}
