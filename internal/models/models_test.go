package models

import (
	"testing"

	"dnnperf/internal/graph"
	"dnnperf/internal/tensor"
)

// Published reference values: parameters in millions, forward GFLOPs per
// 224/299 image. Our builders should land close (BN/head bookkeeping causes
// small deviations across references, so ranges are used).
var refs = []struct {
	name         string
	pMinM, pMaxM float64 // parameter count bounds, millions
	fMin, fMax   float64 // fwd GFLOPs per image bounds
}{
	{"resnet50", 24.5, 26.5, 7.0, 9.0},     // 25.6M, ~8.2 GFLOPs (2*MACs)
	{"resnet101", 43.0, 46.0, 14.0, 16.5},  // 44.5M, ~15.2
	{"resnet152", 58.5, 62.0, 21.0, 24.0},  // 60.2M, ~22.6
	{"inception3", 21.5, 25.5, 10.5, 13.0}, // 23.8M, ~11.5
	{"inception4", 41.0, 44.5, 23.0, 26.5}, // 42.7M, ~24.6
}

func TestModelParamAndFLOPCounts(t *testing.T) {
	for _, ref := range refs {
		ref := ref
		t.Run(ref.name, func(t *testing.T) {
			b, err := Get(ref.name)
			if err != nil {
				t.Fatal(err)
			}
			m := b(Config{Batch: 1})
			if err := m.G.Validate(); err != nil {
				t.Fatal(err)
			}
			pm := float64(m.Params()) / 1e6
			if pm < ref.pMinM || pm > ref.pMaxM {
				t.Errorf("params = %.2fM, want [%.1f, %.1f]", pm, ref.pMinM, ref.pMaxM)
			}
			gf := float64(m.FwdFLOPs()) / 1e9
			if gf < ref.fMin || gf > ref.fMax {
				t.Errorf("fwd GFLOPs = %.2f, want [%.1f, %.1f]", gf, ref.fMin, ref.fMax)
			}
			if bf := m.BwdFLOPs(); bf < m.FwdFLOPs() {
				t.Errorf("bwd FLOPs %d < fwd %d", bf, m.FwdFLOPs())
			}
		})
	}
}

func TestModelDepthOrdering(t *testing.T) {
	r50 := ResNet50(Config{Batch: 1})
	r101 := ResNet101(Config{Batch: 1})
	r152 := ResNet152(Config{Batch: 1})
	if !(r50.Params() < r101.Params() && r101.Params() < r152.Params()) {
		t.Fatal("ResNet parameter counts must increase with depth")
	}
	if !(r50.FwdFLOPs() < r101.FwdFLOPs() && r101.FwdFLOPs() < r152.FwdFLOPs()) {
		t.Fatal("ResNet FLOPs must increase with depth")
	}
	if !(r50.OpCount() < r101.OpCount() && r101.OpCount() < r152.OpCount()) {
		t.Fatal("ResNet op counts must increase with depth")
	}
}

func TestFLOPsScaleLinearlyWithBatch(t *testing.T) {
	m1 := ResNet50(Config{Batch: 1})
	m4 := ResNet50(Config{Batch: 4})
	if m4.FwdFLOPs() != 4*m1.FwdFLOPs() {
		t.Fatalf("batch-4 FLOPs %d != 4x batch-1 %d", m4.FwdFLOPs(), m1.FwdFLOPs())
	}
	if m4.Params() != m1.Params() {
		t.Fatal("params must not depend on batch")
	}
}

func TestInceptionIsBranchierThanResNet(t *testing.T) {
	// Count maximum out-degree style branching: inception modules fan one
	// tensor into 3-4 branches; ResNet fans into at most 2.
	branchFactor := func(m *Model) int {
		max := 0
		for _, n := range m.G.Nodes {
			if c := n.Consumers(); c > max {
				max = c
			}
		}
		return max
	}
	inc := InceptionV4(Config{Batch: 1})
	rn := ResNet152(Config{Batch: 1})
	if branchFactor(inc) <= branchFactor(rn) {
		t.Fatalf("inception branch factor %d must exceed resnet %d", branchFactor(inc), branchFactor(rn))
	}
}

func TestGetUnknownModel(t *testing.T) {
	if _, err := Get("mobilenet"); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestNamesAndDisplayNames(t *testing.T) {
	names := Names()
	if len(names) < 6 {
		t.Fatalf("Names() = %v", names)
	}
	for _, n := range PaperModels {
		if _, err := Get(n); err != nil {
			t.Fatalf("paper model %q not registered", n)
		}
		if DisplayName(n) == n {
			t.Fatalf("no display name for %q", n)
		}
	}
}

func TestBuildersAreDeterministic(t *testing.T) {
	a := TinyCNN(Config{Batch: 2, Seed: 5})
	b := TinyCNN(Config{Batch: 2, Seed: 5})
	va, vb := a.G.Variables(), b.G.Variables()
	if len(va) != len(vb) {
		t.Fatal("variable count mismatch")
	}
	for i := range va {
		va[i].Materialize()
		vb[i].Materialize()
		if va[i].Value.MaxAbsDiff(vb[i].Value) != 0 {
			t.Fatalf("variable %d differs between identical builds", i)
		}
	}
	c := TinyCNN(Config{Batch: 2, Seed: 6})
	c.G.Variables()[0].Materialize()
	if va[0].Value.MaxAbsDiff(c.G.Variables()[0].Value) == 0 {
		t.Fatal("different seeds must give different weights")
	}
}

func TestTinyCNNForwardBackward(t *testing.T) {
	m := TinyCNN(Config{Batch: 2, Seed: 1})
	if !tensor.ShapeEq(m.Logits.Shape(), []int{2, 10}) {
		t.Fatalf("logits shape %v", m.Logits.Shape())
	}
	rng := tensor.NewRNG(3)
	ex := graph.NewExecutor(m.G, tensor.Serial, 1)
	st, err := ex.Forward(map[*graph.Node]*tensor.Tensor{m.Input: rng.Uniform(0, 1, 2, 3, 32, 32)})
	if err != nil {
		t.Fatal(err)
	}
	logits := st.Value(m.Logits)
	loss, grad := tensor.CrossEntropyLoss(tensor.Serial, logits, []int{3, 7})
	if loss <= 0 {
		t.Fatalf("loss = %v", loss)
	}
	m.G.ZeroGrads()
	if err := ex.Backward(st, m.Logits, grad); err != nil {
		t.Fatal(err)
	}
	// Every variable must receive a nonzero gradient (network is connected).
	for _, v := range m.G.Variables() {
		if v.Grad.L2Norm() == 0 {
			t.Fatalf("variable %s has zero gradient", v.Name)
		}
	}
}

// The graph build must not materialize any weights (simulation-scale builds
// of ResNet-152 at batch 1024 must stay cheap).
func TestBuildDoesNotAllocateWeights(t *testing.T) {
	m := ResNet152(Config{Batch: 1024})
	for _, v := range m.G.Variables() {
		if v.Value != nil {
			t.Fatalf("variable %s materialized at build time", v.Name)
		}
	}
}

// Small-image inception build exercises the reduced-resolution path used in
// functional tests.
func TestInceptionSmallImageBuilds(t *testing.T) {
	m := InceptionV3(Config{Batch: 1, ImageSize: 139, Classes: 10})
	if m.Logits.Shape()[1] != 10 {
		t.Fatalf("classes = %d", m.Logits.Shape()[1])
	}
	m4 := InceptionV4(Config{Batch: 1, ImageSize: 139, Classes: 10})
	if err := m4.G.Validate(); err != nil {
		t.Fatal(err)
	}
}
