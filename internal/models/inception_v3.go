package models

import "dnnperf/internal/graph"

// InceptionV3 builds Inception-v3 (Szegedy et al., "Rethinking the Inception
// Architecture") with the torchvision channel configuration and without the
// auxiliary classifier (tf_cnn_benchmarks also trains without aux loss).
// Native input is 299x299; the final feature map is 2048 channels at 8x8.
func InceptionV3(cfg Config) *Model {
	cfg = cfg.withDefaults(299)
	b := newBuilder(cfg.Seed)
	x := b.g.Input("images", cfg.Batch, 3, cfg.ImageSize, cfg.ImageSize)

	// Stem.
	t := b.convSq(x, 32, 3, 2, 0) // 149
	t = b.convSq(t, 32, 3, 1, 0)  // 147
	t = b.convSq(t, 64, 3, 1, 1)  // 147
	t = b.maxPool(t, 3, 2, 0)     // 73
	t = b.convSq(t, 80, 1, 1, 0)
	t = b.convSq(t, 192, 3, 1, 0) // 71
	t = b.maxPool(t, 3, 2, 0)     // 35

	// 3x Inception-A.
	t = b.inceptionA3(t, 32)
	t = b.inceptionA3(t, 64)
	t = b.inceptionA3(t, 64)
	// Grid reduction to 17x17.
	t = b.inceptionB3(t)
	// 4x Inception-C (factorized 7x7).
	t = b.inceptionC3(t, 128)
	t = b.inceptionC3(t, 160)
	t = b.inceptionC3(t, 160)
	t = b.inceptionC3(t, 192)
	// Grid reduction to 8x8.
	t = b.inceptionD3(t)
	// 2x Inception-E (expanded filter bank).
	t = b.inceptionE3(t)
	t = b.inceptionE3(t)

	logits := b.head(t, cfg.Classes)
	return &Model{Name: "inception3", G: b.g, Input: x, Logits: logits, Cfg: cfg}
}

// inceptionA3 is the 35x35 module: 1x1, 5x5, double-3x3 and pool branches.
func (b *builder) inceptionA3(x *graph.Node, poolF int) *graph.Node {
	b1 := b.convSq(x, 64, 1, 1, 0)

	b5 := b.convSq(x, 48, 1, 1, 0)
	b5 = b.convSq(b5, 64, 5, 1, 2)

	b3 := b.convSq(x, 64, 1, 1, 0)
	b3 = b.convSq(b3, 96, 3, 1, 1)
	b3 = b.convSq(b3, 96, 3, 1, 1)

	bp := b.avgPool(x, 3, 1, 1)
	bp = b.convSq(bp, poolF, 1, 1, 0)

	return b.concat(b1, b5, b3, bp)
}

// inceptionB3 is the 35->17 grid reduction.
func (b *builder) inceptionB3(x *graph.Node) *graph.Node {
	b3 := b.convSq(x, 384, 3, 2, 0)

	bd := b.convSq(x, 64, 1, 1, 0)
	bd = b.convSq(bd, 96, 3, 1, 1)
	bd = b.convSq(bd, 96, 3, 2, 0)

	bp := b.maxPool(x, 3, 2, 0)
	return b.concat(b3, bd, bp)
}

// inceptionC3 is the 17x17 module with factorized 7x7 convolutions; c7 is
// the bottleneck width (128/160/160/192 across the four instances).
func (b *builder) inceptionC3(x *graph.Node, c7 int) *graph.Node {
	b1 := b.convSq(x, 192, 1, 1, 0)

	b7 := b.convSq(x, c7, 1, 1, 0)
	b7 = b.conv(b7, c7, 1, 7, 1, 1, 0, 3, true)
	b7 = b.conv(b7, 192, 7, 1, 1, 1, 3, 0, true)

	bd := b.convSq(x, c7, 1, 1, 0)
	bd = b.conv(bd, c7, 7, 1, 1, 1, 3, 0, true)
	bd = b.conv(bd, c7, 1, 7, 1, 1, 0, 3, true)
	bd = b.conv(bd, c7, 7, 1, 1, 1, 3, 0, true)
	bd = b.conv(bd, 192, 1, 7, 1, 1, 0, 3, true)

	bp := b.avgPool(x, 3, 1, 1)
	bp = b.convSq(bp, 192, 1, 1, 0)

	return b.concat(b1, b7, bd, bp)
}

// inceptionD3 is the 17->8 grid reduction.
func (b *builder) inceptionD3(x *graph.Node) *graph.Node {
	b3 := b.convSq(x, 192, 1, 1, 0)
	b3 = b.convSq(b3, 320, 3, 2, 0)

	b7 := b.convSq(x, 192, 1, 1, 0)
	b7 = b.conv(b7, 192, 1, 7, 1, 1, 0, 3, true)
	b7 = b.conv(b7, 192, 7, 1, 1, 1, 3, 0, true)
	b7 = b.convSq(b7, 192, 3, 2, 0)

	bp := b.maxPool(x, 3, 2, 0)
	return b.concat(b3, b7, bp)
}

// inceptionE3 is the 8x8 module with expanded 3x3 filter banks.
func (b *builder) inceptionE3(x *graph.Node) *graph.Node {
	b1 := b.convSq(x, 320, 1, 1, 0)

	b3 := b.convSq(x, 384, 1, 1, 0)
	b3a := b.conv(b3, 384, 1, 3, 1, 1, 0, 1, true)
	b3b := b.conv(b3, 384, 3, 1, 1, 1, 1, 0, true)
	b3cat := b.concat(b3a, b3b)

	bd := b.convSq(x, 448, 1, 1, 0)
	bd = b.convSq(bd, 384, 3, 1, 1)
	bda := b.conv(bd, 384, 1, 3, 1, 1, 0, 1, true)
	bdb := b.conv(bd, 384, 3, 1, 1, 1, 1, 0, true)
	bdcat := b.concat(bda, bdb)

	bp := b.avgPool(x, 3, 1, 1)
	bp = b.convSq(bp, 192, 1, 1, 0)

	return b.concat(b1, b3cat, bdcat, bp)
}
