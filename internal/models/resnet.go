package models

import "dnnperf/internal/graph"

// resnet builds a ResNet v1.5 (stride on the 3x3 conv of each bottleneck,
// the variant tf_cnn_benchmarks and torchvision use) with the given stage
// depths.
func resnet(name string, cfg Config, layers [4]int) *Model {
	cfg = cfg.withDefaults(224)
	b := newBuilder(cfg.Seed)
	x := b.g.Input("images", cfg.Batch, 3, cfg.ImageSize, cfg.ImageSize)

	// Stem: 7x7/2 conv, BN, ReLU, 3x3/2 max pool.
	t := b.conv(x, 64, 7, 7, 2, 2, 3, 3, true)
	t = b.maxPool(t, 3, 2, 1)

	base := []int{64, 128, 256, 512}
	for stage := 0; stage < 4; stage++ {
		for blk := 0; blk < layers[stage]; blk++ {
			stride := 1
			if stage > 0 && blk == 0 {
				stride = 2
			}
			t = b.bottleneck(t, base[stage], stride, blk == 0)
		}
	}
	logits := b.head(t, cfg.Classes)
	return &Model{Name: name, G: b.g, Input: x, Logits: logits, Cfg: cfg}
}

// bottleneck adds a 1x1-3x3-1x1 residual block with expansion 4.
// proj selects a projection (1x1 conv) shortcut; otherwise identity.
func (b *builder) bottleneck(x *graph.Node, base, stride int, proj bool) *graph.Node {
	outC := 4 * base
	shortcut := x
	if proj {
		shortcut = b.conv(x, outC, 1, 1, stride, stride, 0, 0, false)
	}
	t := b.conv(x, base, 1, 1, 1, 1, 0, 0, true)
	t = b.conv(t, base, 3, 3, stride, stride, 1, 1, true)
	t = b.conv(t, outC, 1, 1, 1, 1, 0, 0, false)
	t = b.g.Apply(graph.AddOp{}, b.name("residual"), t, shortcut)
	return b.g.Apply(graph.ReLUOp{}, b.name("relu"), t)
}

// ResNet50 builds ResNet-50 (stages 3-4-6-3, 25.6M parameters).
func ResNet50(cfg Config) *Model { return resnet("resnet50", cfg, [4]int{3, 4, 6, 3}) }

// ResNet101 builds ResNet-101 (stages 3-4-23-3, 44.5M parameters).
func ResNet101(cfg Config) *Model { return resnet("resnet101", cfg, [4]int{3, 4, 23, 3}) }

// ResNet152 builds ResNet-152 (stages 3-8-36-3, 60.2M parameters).
func ResNet152(cfg Config) *Model { return resnet("resnet152", cfg, [4]int{3, 8, 36, 3}) }
