package models

import "dnnperf/internal/graph"

// GoogLeNet builds Inception-v1 (Szegedy et al. 2014) in its batch-norm
// variant (as in torchvision: BN after each convolution, 3x3 kernels in the
// "5x5" branch, no auxiliary classifiers). With ~6.6M parameters and nine
// inception modules it is the smallest, branchiest member of the model zoo
// — a useful extreme for the inter-op parallelism axis the paper contrasts
// ResNets and Inceptions on.
func GoogLeNet(cfg Config) *Model {
	cfg = cfg.withDefaults(224)
	b := newBuilder(cfg.Seed)
	x := b.g.Input("images", cfg.Batch, 3, cfg.ImageSize, cfg.ImageSize)

	t := b.conv(x, 64, 7, 7, 2, 2, 3, 3, true)
	t = b.maxPool(t, 3, 2, 1)
	t = b.convSq(t, 64, 1, 1, 0)
	t = b.convSq(t, 192, 3, 1, 1)
	t = b.maxPool(t, 3, 2, 1)

	type inc struct{ c1, c3r, c3, c5r, c5, pp int }
	modules3 := []inc{
		{64, 96, 128, 16, 32, 32},   // 3a -> 256
		{128, 128, 192, 32, 96, 64}, // 3b -> 480
	}
	modules4 := []inc{
		{192, 96, 208, 16, 48, 64},    // 4a -> 512
		{160, 112, 224, 24, 64, 64},   // 4b -> 512
		{128, 128, 256, 24, 64, 64},   // 4c -> 512
		{112, 144, 288, 32, 64, 64},   // 4d -> 528
		{256, 160, 320, 32, 128, 128}, // 4e -> 832
	}
	modules5 := []inc{
		{256, 160, 320, 32, 128, 128}, // 5a -> 832
		{384, 192, 384, 48, 128, 128}, // 5b -> 1024
	}
	module := func(t *graph.Node, m inc) *graph.Node {
		b1 := b.convSq(t, m.c1, 1, 1, 0)
		b3 := b.convSq(t, m.c3r, 1, 1, 0)
		b3 = b.convSq(b3, m.c3, 3, 1, 1)
		b5 := b.convSq(t, m.c5r, 1, 1, 0)
		b5 = b.convSq(b5, m.c5, 3, 1, 1)
		bp := b.maxPool(t, 3, 1, 1)
		bp = b.convSq(bp, m.pp, 1, 1, 0)
		return b.concat(b1, b3, b5, bp)
	}

	for _, m := range modules3 {
		t = module(t, m)
	}
	t = b.maxPool(t, 3, 2, 1)
	for _, m := range modules4 {
		t = module(t, m)
	}
	t = b.maxPool(t, 3, 2, 1)
	for _, m := range modules5 {
		t = module(t, m)
	}

	logits := b.head(t, cfg.Classes)
	return &Model{Name: "googlenet", G: b.g, Input: x, Logits: logits, Cfg: cfg}
}

func init() {
	registry["googlenet"] = GoogLeNet
}
