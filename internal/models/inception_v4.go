package models

import "dnnperf/internal/graph"

// InceptionV4 builds Inception-v4 (Szegedy et al., "Inception-v4,
// Inception-ResNet and the Impact of Residual Connections"): a deeper,
// branchier network than v3 (4xA, 7xB, 3xC modules plus a branching stem),
// which is why the paper uses it as its most inter-op-parallel workload.
// Native input is 299x299; the final feature map is 1536 channels at 8x8.
func InceptionV4(cfg Config) *Model {
	cfg = cfg.withDefaults(299)
	b := newBuilder(cfg.Seed)
	x := b.g.Input("images", cfg.Batch, 3, cfg.ImageSize, cfg.ImageSize)

	// Stem (itself contains three concat branch points).
	t := b.convSq(x, 32, 3, 2, 0) // 149
	t = b.convSq(t, 32, 3, 1, 0)  // 147
	t = b.convSq(t, 64, 3, 1, 1)  // 147

	s1a := b.maxPool(t, 3, 2, 0) // 73
	s1b := b.convSq(t, 96, 3, 2, 0)
	t = b.concat(s1a, s1b) // 160 ch

	s2a := b.convSq(t, 64, 1, 1, 0)
	s2a = b.convSq(s2a, 96, 3, 1, 0) // 71
	s2b := b.convSq(t, 64, 1, 1, 0)
	s2b = b.conv(s2b, 64, 7, 1, 1, 1, 3, 0, true)
	s2b = b.conv(s2b, 64, 1, 7, 1, 1, 0, 3, true)
	s2b = b.convSq(s2b, 96, 3, 1, 0)
	t = b.concat(s2a, s2b) // 192 ch

	s3a := b.convSq(t, 192, 3, 2, 0) // 35
	s3b := b.maxPool(t, 3, 2, 0)
	t = b.concat(s3a, s3b) // 384 ch, 35x35

	for i := 0; i < 4; i++ {
		t = b.inceptionA4(t)
	}
	t = b.reductionA4(t) // 1024 ch, 17x17
	for i := 0; i < 7; i++ {
		t = b.inceptionB4(t)
	}
	t = b.reductionB4(t) // 1536 ch, 8x8
	for i := 0; i < 3; i++ {
		t = b.inceptionC4(t)
	}

	logits := b.head(t, cfg.Classes)
	return &Model{Name: "inception4", G: b.g, Input: x, Logits: logits, Cfg: cfg}
}

// inceptionA4 is the 35x35 module (output 384 channels).
func (b *builder) inceptionA4(x *graph.Node) *graph.Node {
	b1 := b.convSq(x, 96, 1, 1, 0)

	b2 := b.convSq(x, 64, 1, 1, 0)
	b2 = b.convSq(b2, 96, 3, 1, 1)

	b3 := b.convSq(x, 64, 1, 1, 0)
	b3 = b.convSq(b3, 96, 3, 1, 1)
	b3 = b.convSq(b3, 96, 3, 1, 1)

	bp := b.avgPool(x, 3, 1, 1)
	bp = b.convSq(bp, 96, 1, 1, 0)

	return b.concat(b1, b2, b3, bp)
}

// reductionA4 is the 35->17 grid reduction (output 1024 channels).
func (b *builder) reductionA4(x *graph.Node) *graph.Node {
	b1 := b.convSq(x, 384, 3, 2, 0)

	b2 := b.convSq(x, 192, 1, 1, 0)
	b2 = b.convSq(b2, 224, 3, 1, 1)
	b2 = b.convSq(b2, 256, 3, 2, 0)

	bp := b.maxPool(x, 3, 2, 0)
	return b.concat(b1, b2, bp)
}

// inceptionB4 is the 17x17 module (output 1024 channels).
func (b *builder) inceptionB4(x *graph.Node) *graph.Node {
	b1 := b.convSq(x, 384, 1, 1, 0)

	b2 := b.convSq(x, 192, 1, 1, 0)
	b2 = b.conv(b2, 224, 1, 7, 1, 1, 0, 3, true)
	b2 = b.conv(b2, 256, 7, 1, 1, 1, 3, 0, true)

	b3 := b.convSq(x, 192, 1, 1, 0)
	b3 = b.conv(b3, 192, 7, 1, 1, 1, 3, 0, true)
	b3 = b.conv(b3, 224, 1, 7, 1, 1, 0, 3, true)
	b3 = b.conv(b3, 224, 7, 1, 1, 1, 3, 0, true)
	b3 = b.conv(b3, 256, 1, 7, 1, 1, 0, 3, true)

	bp := b.avgPool(x, 3, 1, 1)
	bp = b.convSq(bp, 128, 1, 1, 0)

	return b.concat(b1, b2, b3, bp)
}

// reductionB4 is the 17->8 grid reduction (output 1536 channels).
func (b *builder) reductionB4(x *graph.Node) *graph.Node {
	b1 := b.convSq(x, 192, 1, 1, 0)
	b1 = b.convSq(b1, 192, 3, 2, 0)

	b2 := b.convSq(x, 256, 1, 1, 0)
	b2 = b.conv(b2, 256, 1, 7, 1, 1, 0, 3, true)
	b2 = b.conv(b2, 320, 7, 1, 1, 1, 3, 0, true)
	b2 = b.convSq(b2, 320, 3, 2, 0)

	bp := b.maxPool(x, 3, 2, 0)
	return b.concat(b1, b2, bp)
}

// inceptionC4 is the 8x8 module (output 1536 channels).
func (b *builder) inceptionC4(x *graph.Node) *graph.Node {
	b1 := b.convSq(x, 256, 1, 1, 0)

	b2 := b.convSq(x, 384, 1, 1, 0)
	b2a := b.conv(b2, 256, 1, 3, 1, 1, 0, 1, true)
	b2b := b.conv(b2, 256, 3, 1, 1, 1, 1, 0, true)
	b2cat := b.concat(b2a, b2b)

	b3 := b.convSq(x, 384, 1, 1, 0)
	b3 = b.conv(b3, 448, 1, 3, 1, 1, 0, 1, true)
	b3 = b.conv(b3, 512, 3, 1, 1, 1, 1, 0, true)
	b3a := b.conv(b3, 256, 3, 1, 1, 1, 1, 0, true)
	b3b := b.conv(b3, 256, 1, 3, 1, 1, 0, 1, true)
	b3cat := b.concat(b3a, b3b)

	bp := b.avgPool(x, 3, 1, 1)
	bp = b.convSq(bp, 256, 1, 1, 0)

	return b.concat(b1, b2cat, b3cat, bp)
}
