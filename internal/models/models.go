// Package models builds the DNN architectures evaluated in the reproduced
// paper — ResNet-50/101/152 and Inception-v3/v4 — as dnnperf computation
// graphs, with exact parameter and FLOP accounting. A small TinyCNN is
// included for fast functional training demos and tests.
//
// Builders are deterministic: every variable gets an independent RNG derived
// from (Config.Seed, variable index), so weights do not depend on
// materialization order and two builds with the same seed are identical.
package models

import (
	"fmt"
	"sort"

	"dnnperf/internal/graph"
	"dnnperf/internal/tensor"
)

// Config parameterizes a model build.
type Config struct {
	Batch     int   // minibatch size (per process)
	ImageSize int   // input H=W; 0 selects the model's native size
	Classes   int   // output classes; 0 selects 1000 (ImageNet)
	Seed      int64 // weight initialization seed
}

func (c Config) withDefaults(native int) Config {
	if c.Batch <= 0 {
		c.Batch = 1
	}
	if c.ImageSize <= 0 {
		c.ImageSize = native
	}
	if c.Classes <= 0 {
		c.Classes = 1000
	}
	return c
}

// Model bundles a built graph with its I/O nodes and metadata.
type Model struct {
	Name   string
	G      *graph.Graph
	Input  *graph.Node
	Logits *graph.Node
	Cfg    Config
}

// Params returns the trainable parameter count.
func (m *Model) Params() int64 { return m.G.ParamCount() }

// GradBytes returns the gradient payload per step (what Horovod reduces).
func (m *Model) GradBytes() int64 { return m.G.GradBytes() }

// FwdFLOPs returns the forward floating-point work for the configured batch.
func (m *Model) FwdFLOPs() int64 {
	var total int64
	for _, n := range m.G.Nodes {
		if n.Kind != graph.KindOp {
			continue
		}
		in := make([][]int, len(n.Inputs))
		for i, d := range n.Inputs {
			in[i] = d.Shape()
		}
		total += n.Op.FwdFLOPs(in, n.Shape())
	}
	return total
}

// BwdFLOPs returns the backward floating-point work for the configured batch.
func (m *Model) BwdFLOPs() int64 {
	var total int64
	for _, n := range m.G.Nodes {
		if n.Kind != graph.KindOp {
			continue
		}
		in := make([][]int, len(n.Inputs))
		for i, d := range n.Inputs {
			in[i] = d.Shape()
		}
		total += n.Op.BwdFLOPs(in, n.Shape())
	}
	return total
}

// OpCount returns the number of op nodes in the graph.
func (m *Model) OpCount() int {
	c := 0
	for _, n := range m.G.Nodes {
		if n.Kind == graph.KindOp {
			c++
		}
	}
	return c
}

// Builder constructs a model for a configuration.
type Builder func(Config) *Model

var registry = map[string]Builder{
	"resnet50":   ResNet50,
	"resnet101":  ResNet101,
	"resnet152":  ResNet152,
	"inception3": InceptionV3,
	"inception4": InceptionV4,
	"tinycnn":    TinyCNN,
}

// PaperModels lists the five models of the paper's evaluation in its order.
var PaperModels = []string{"resnet50", "resnet101", "resnet152", "inception3", "inception4"}

// Get returns the builder registered under name.
func Get(name string) (Builder, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("models: unknown model %q (have %v)", name, Names())
	}
	return b, nil
}

// Names returns all registered model names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// DisplayName maps a registry name to the paper's label.
func DisplayName(name string) string {
	switch name {
	case "resnet50":
		return "ResNet-50"
	case "resnet101":
		return "ResNet-101"
	case "resnet152":
		return "ResNet-152"
	case "inception3":
		return "Inception-v3"
	case "inception4":
		return "Inception-v4"
	case "tinycnn":
		return "TinyCNN"
	case "alexnet":
		return "AlexNet"
	case "vgg16":
		return "VGG-16"
	case "resnet18":
		return "ResNet-18"
	case "resnet34":
		return "ResNet-34"
	case "googlenet":
		return "GoogLeNet"
	default:
		return name
	}
}

// builder carries shared state while assembling a graph.
type builder struct {
	g       *graph.Graph
	seed    int64
	nVars   int
	nLayers int
}

func newBuilder(seed int64) *builder { return &builder{g: graph.New(), seed: seed} }

// varInit returns an Initializer with an independent deterministic RNG.
func (b *builder) varInit(fanIn int) graph.Initializer {
	idx := int64(b.nVars)
	b.nVars++
	seed := b.seed
	return func(shape []int) *tensor.Tensor {
		return tensor.NewRNG(seed*1000003+idx).HeInit(fanIn, shape...)
	}
}

func (b *builder) name(kind string) string {
	b.nLayers++
	return fmt.Sprintf("%s_%d", kind, b.nLayers)
}

// conv adds conv(+BN+optional ReLU). Kernels have no bias (BN provides the
// shift), matching the ResNet/Inception reference implementations.
func (b *builder) conv(x *graph.Node, outC, kh, kw, sh, sw, ph, pw int, relu bool) *graph.Node {
	inC := x.Shape()[1]
	spec := tensor.ConvSpec{KH: kh, KW: kw, StrideH: sh, StrideW: sw, PadH: ph, PadW: pw}
	k := b.g.Variable(b.name("w"), []int{outC, inC, kh, kw}, b.varInit(inC*kh*kw))
	t := b.g.Apply(&graph.Conv2DOp{Spec: spec}, b.name("conv"), x, k)
	gamma := b.g.Variable(b.name("gamma"), []int{outC}, graph.OnesInit)
	beta := b.g.Variable(b.name("beta"), []int{outC}, graph.Zeros)
	t = b.g.Apply(&graph.BatchNormOp{Eps: 1e-5}, b.name("bn"), t, gamma, beta)
	if relu {
		t = b.g.Apply(graph.ReLUOp{}, b.name("relu"), t)
	}
	return t
}

// convSq is conv with a square kernel, symmetric stride/pad, and ReLU.
func (b *builder) convSq(x *graph.Node, outC, k, stride, pad int) *graph.Node {
	return b.conv(x, outC, k, k, stride, stride, pad, pad, true)
}

func (b *builder) maxPool(x *graph.Node, k, stride, pad int) *graph.Node {
	spec := tensor.PoolSpec{KH: k, KW: k, StrideH: stride, StrideW: stride, PadH: pad, PadW: pad}
	return b.g.Apply(&graph.MaxPoolOp{Spec: spec}, b.name("maxpool"), x)
}

func (b *builder) avgPool(x *graph.Node, k, stride, pad int) *graph.Node {
	spec := tensor.PoolSpec{KH: k, KW: k, StrideH: stride, StrideW: stride, PadH: pad, PadW: pad}
	return b.g.Apply(&graph.AvgPoolOp{Spec: spec}, b.name("avgpool"), x)
}

func (b *builder) concat(parts ...*graph.Node) *graph.Node {
	return b.g.Apply(&graph.ConcatOp{Axis: 1}, b.name("concat"), parts...)
}

func (b *builder) head(x *graph.Node, classes int) *graph.Node {
	t := b.g.Apply(graph.GlobalAvgPoolOp{}, b.name("gap"), x)
	inF := t.Shape()[1]
	w := b.g.Variable(b.name("fcw"), []int{inF, classes}, b.varInit(inF))
	bias := b.g.Variable(b.name("fcb"), []int{classes}, graph.Zeros)
	return b.g.Apply(graph.DenseOp{}, b.name("fc"), t, w, bias)
}

// TinyCNN is a small 3-conv network on 32x32 inputs for fast functional
// training in examples and tests. It is not part of the paper's model set.
func TinyCNN(cfg Config) *Model {
	cfg = cfg.withDefaults(32)
	if cfg.Classes == 1000 {
		cfg.Classes = 10
	}
	b := newBuilder(cfg.Seed)
	x := b.g.Input("images", cfg.Batch, 3, cfg.ImageSize, cfg.ImageSize)
	t := b.convSq(x, 16, 3, 1, 1)
	t = b.maxPool(t, 2, 2, 0)
	t = b.convSq(t, 32, 3, 1, 1)
	t = b.maxPool(t, 2, 2, 0)
	t = b.convSq(t, 64, 3, 1, 1)
	logits := b.head(t, cfg.Classes)
	return &Model{Name: "tinycnn", G: b.g, Input: x, Logits: logits, Cfg: cfg}
}
