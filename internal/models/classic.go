package models

import (
	"dnnperf/internal/graph"
	"dnnperf/internal/tensor"
)

// Classic (pre-batch-norm) architectures and the basic-block ResNets. These
// extend the paper's model set with the networks its related work
// benchmarks (Shi et al. evaluate AlexNet/VGG-class models), giving the
// characterization harness a wider compute/parameter spectrum: AlexNet and
// VGG-16 are parameter-heavy but shallow (communication-bound at scale),
// the basic-block ResNets are light and linear.

// convBias adds conv + per-channel bias (+ optional ReLU) — the classic
// building block without batch normalization.
func (b *builder) convBias(x *graph.Node, outC, kh, kw, sh, sw, ph, pw int, relu bool) *graph.Node {
	inC := x.Shape()[1]
	spec := tensor.ConvSpec{KH: kh, KW: kw, StrideH: sh, StrideW: sw, PadH: ph, PadW: pw}
	k := b.g.Variable(b.name("w"), []int{outC, inC, kh, kw}, b.varInit(inC*kh*kw))
	t := b.g.Apply(&graph.Conv2DOp{Spec: spec}, b.name("conv"), x, k)
	bias := b.g.Variable(b.name("bias"), []int{outC}, graph.Zeros)
	t = b.g.Apply(graph.BiasAddOp{}, b.name("biasadd"), t, bias)
	if relu {
		t = b.g.Apply(graph.ReLUOp{}, b.name("relu"), t)
	}
	return t
}

// dense adds a fully-connected layer with optional ReLU and dropout.
func (b *builder) dense(x *graph.Node, out int, relu bool, dropRate float32) *graph.Node {
	inF := x.Shape()[1]
	w := b.g.Variable(b.name("fcw"), []int{inF, out}, b.varInit(inF))
	bias := b.g.Variable(b.name("fcb"), []int{out}, graph.Zeros)
	t := b.g.Apply(graph.DenseOp{}, b.name("fc"), x, w, bias)
	if relu {
		t = b.g.Apply(graph.ReLUOp{}, b.name("relu"), t)
	}
	if dropRate > 0 {
		t = b.g.Apply(&graph.DropoutOp{Rate: dropRate, Seed: b.seed}, b.name("dropout"), t)
	}
	return t
}

// AlexNet builds the original single-tower AlexNet (Krizhevsky et al.)
// with LRN after the first two convolutions and dropout in the classifier.
// Native input is 227x227; ~61M parameters, most of them in the first
// fully-connected layer — the opposite FLOP/parameter profile from the
// ResNets, useful for stressing gradient-volume effects.
func AlexNet(cfg Config) *Model {
	cfg = cfg.withDefaults(227)
	b := newBuilder(cfg.Seed)
	x := b.g.Input("images", cfg.Batch, 3, cfg.ImageSize, cfg.ImageSize)

	t := b.convBias(x, 96, 11, 11, 4, 4, 0, 0, true)
	t = b.g.Apply(&graph.LRNOp{Spec: tensor.DefaultLRN}, b.name("lrn"), t)
	t = b.maxPool(t, 3, 2, 0)

	t = b.convBias(t, 256, 5, 5, 1, 1, 2, 2, true)
	t = b.g.Apply(&graph.LRNOp{Spec: tensor.DefaultLRN}, b.name("lrn"), t)
	t = b.maxPool(t, 3, 2, 0)

	t = b.convBias(t, 384, 3, 3, 1, 1, 1, 1, true)
	t = b.convBias(t, 384, 3, 3, 1, 1, 1, 1, true)
	t = b.convBias(t, 256, 3, 3, 1, 1, 1, 1, true)
	t = b.maxPool(t, 3, 2, 0)

	t = b.g.Apply(graph.FlattenOp{}, b.name("flatten"), t)
	t = b.dense(t, 4096, true, 0.5)
	t = b.dense(t, 4096, true, 0.5)
	logits := b.dense(t, cfg.Classes, false, 0)
	return &Model{Name: "alexnet", G: b.g, Input: x, Logits: logits, Cfg: cfg}
}

// VGG16 builds VGG-16 (Simonyan & Zisserman, configuration D): thirteen
// 3x3 convolutions plus three fully-connected layers, ~138M parameters.
func VGG16(cfg Config) *Model {
	cfg = cfg.withDefaults(224)
	b := newBuilder(cfg.Seed)
	x := b.g.Input("images", cfg.Batch, 3, cfg.ImageSize, cfg.ImageSize)

	t := x
	for _, stage := range []struct{ convs, ch int }{
		{2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512},
	} {
		for i := 0; i < stage.convs; i++ {
			t = b.convBias(t, stage.ch, 3, 3, 1, 1, 1, 1, true)
		}
		t = b.maxPool(t, 2, 2, 0)
	}

	t = b.g.Apply(graph.FlattenOp{}, b.name("flatten"), t)
	t = b.dense(t, 4096, true, 0.5)
	t = b.dense(t, 4096, true, 0.5)
	logits := b.dense(t, cfg.Classes, false, 0)
	return &Model{Name: "vgg16", G: b.g, Input: x, Logits: logits, Cfg: cfg}
}

// basicBlock adds a two-conv residual block (expansion 1), the ResNet-18/34
// building block.
func (b *builder) basicBlock(x *graph.Node, ch, stride int, proj bool) *graph.Node {
	shortcut := x
	if proj {
		shortcut = b.conv(x, ch, 1, 1, stride, stride, 0, 0, false)
	}
	t := b.conv(x, ch, 3, 3, stride, stride, 1, 1, true)
	t = b.conv(t, ch, 3, 3, 1, 1, 1, 1, false)
	t = b.g.Apply(graph.AddOp{}, b.name("residual"), t, shortcut)
	return b.g.Apply(graph.ReLUOp{}, b.name("relu"), t)
}

// resnetBasic builds a basic-block ResNet with the given stage depths.
func resnetBasic(name string, cfg Config, layers [4]int) *Model {
	cfg = cfg.withDefaults(224)
	b := newBuilder(cfg.Seed)
	x := b.g.Input("images", cfg.Batch, 3, cfg.ImageSize, cfg.ImageSize)

	t := b.conv(x, 64, 7, 7, 2, 2, 3, 3, true)
	t = b.maxPool(t, 3, 2, 1)

	chans := []int{64, 128, 256, 512}
	for stage := 0; stage < 4; stage++ {
		for blk := 0; blk < layers[stage]; blk++ {
			stride := 1
			if stage > 0 && blk == 0 {
				stride = 2
			}
			// Stage 0 keeps 64 channels, so its first block needs no
			// projection; later stages change width and need one.
			proj := blk == 0 && stage > 0
			t = b.basicBlock(t, chans[stage], stride, proj)
		}
	}
	logits := b.head(t, cfg.Classes)
	return &Model{Name: name, G: b.g, Input: x, Logits: logits, Cfg: cfg}
}

// ResNet18 builds ResNet-18 (stages 2-2-2-2, 11.7M parameters).
func ResNet18(cfg Config) *Model { return resnetBasic("resnet18", cfg, [4]int{2, 2, 2, 2}) }

// ResNet34 builds ResNet-34 (stages 3-4-6-3, 21.8M parameters).
func ResNet34(cfg Config) *Model { return resnetBasic("resnet34", cfg, [4]int{3, 4, 6, 3}) }

func init() {
	registry["alexnet"] = AlexNet
	registry["vgg16"] = VGG16
	registry["resnet18"] = ResNet18
	registry["resnet34"] = ResNet34
}
