package dnnperf_test

import (
	"fmt"
	"log"

	"dnnperf"
)

// The paper's headline experiment: ResNet-152 data-parallel training on 128
// Skylake-3 (Stampede2) nodes with 4 ranks per node.
func ExampleSimulate() {
	res, err := dnnperf.Simulate(dnnperf.SimConfig{
		Model: "resnet152", CPU: dnnperf.Skylake3, Net: dnnperf.OmniPath,
		Nodes: 128, PPN: 4, BatchPerProc: 32,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.0f images/sec\n", res.ImagesPerSec)
	// Output: 4694 images/sec
}

// Model metadata matches the published architectures.
func ExampleModelInfo() {
	info, err := dnnperf.ModelInfo("resnet50")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %.2fM parameters, %.2f GFLOPs/image\n",
		info.Display, info.ParamsM, info.GFLOPsPerImage)
	// Output: ResNet-50: 25.56M parameters, 8.28 GFLOPs/image
}

// The automated tuner reproduces the paper's Section IX launch
// recommendation for a 48-core hyper-threaded Skylake: 4 processes per
// node, intra-op threads = cores/ppn - 1 (a spare core for Horovod's
// progress thread), inter-op 2.
func ExampleBestConfig() {
	tc, err := dnnperf.BestConfig("resnet152", "tensorflow",
		dnnperf.Platform{CPU: dnnperf.Skylake3, Net: dnnperf.OmniPath}, 1, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ppn=%d intra=%d inter=%d\n",
		tc.Config.PPN, tc.Config.IntraThreads, tc.Config.InterThreads)
	// Output: ppn=4 intra=11 inter=2
}

// Every table and figure of the paper is a registered experiment.
func ExampleExperimentIDs() {
	ids := dnnperf.ExperimentIDs()
	fmt.Println(len(ids), "experiments, first:", ids[0], "last:", ids[len(ids)-1])
	// Output: 28 experiments, first: table1 last: elastic
}
