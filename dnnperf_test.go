package dnnperf

import (
	"strings"
	"testing"
)

func TestFacadeSimulate(t *testing.T) {
	r, err := Simulate(SimConfig{Model: "resnet50", CPU: Skylake3, Net: OmniPath, PPN: 4, BatchPerProc: 32})
	if err != nil {
		t.Fatal(err)
	}
	if r.ImagesPerSec < 80 || r.ImagesPerSec > 130 {
		t.Fatalf("Skylake-3 ResNet-50 MP = %.1f img/s, want ~105", r.ImagesPerSec)
	}
}

func TestFacadeGPU(t *testing.T) {
	r, err := SimulateGPU(GPUSimConfig{Model: "resnet50", GPU: V100, BatchPerGPU: 64})
	if err != nil {
		t.Fatal(err)
	}
	if r.ImagesPerSec < 250 || r.ImagesPerSec > 450 {
		t.Fatalf("V100 ResNet-50 = %.1f img/s, want ~360", r.ImagesPerSec)
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 28 {
		t.Fatalf("%d experiments", len(ids))
	}
	if len(Experiments()) != len(ids) {
		t.Fatal("Experiments() and ExperimentIDs() disagree")
	}
	tbl, err := RunExperiment("table1")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tbl.Render(&sb)
	if !strings.Contains(sb.String(), "EPYC") {
		t.Fatal("table render missing EPYC")
	}
}

func TestFacadeCatalog(t *testing.T) {
	if Skylake3.Cores() != 48 || EPYC.Cores() != 64 {
		t.Fatal("catalog wrong")
	}
	for _, l := range []string{"Skylake-1", "EPYC"} {
		if _, err := PlatformFor(l); err != nil {
			t.Fatal(err)
		}
	}
	if len(PaperModels()) != 5 {
		t.Fatal("paper models")
	}
	if len(ModelNames()) < 6 {
		t.Fatal("model names")
	}
}

func TestFacadeBestConfig(t *testing.T) {
	tc, err := BestConfig("resnet50", "pytorch", Platform{CPU: Skylake3, Net: OmniPath}, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	if tc.Config.PPN < 16 {
		t.Fatalf("PyTorch best ppn = %d, want high (one rank per core)", tc.Config.PPN)
	}
}

func TestFacadeKeyInsights(t *testing.T) {
	ins, err := KeyInsights()
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) < 6 {
		t.Fatalf("%d insights", len(ins))
	}
}

func TestFacadeModelInfo(t *testing.T) {
	info, err := ModelInfo("resnet50")
	if err != nil {
		t.Fatal(err)
	}
	if info.Display != "ResNet-50" || info.ParamsM < 25 || info.ParamsM > 26 {
		t.Fatalf("ModelInfo = %+v", info)
	}
	if _, err := ModelInfo("nope"); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestFacadeWriteModelDOT(t *testing.T) {
	var sb strings.Builder
	if err := WriteModelDOT(&sb, "tinycnn"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "digraph") || !strings.Contains(sb.String(), "conv2d") {
		t.Fatal("DOT output incomplete")
	}
	if err := WriteModelDOT(&sb, "nope"); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestFacadePipelineAndMemory(t *testing.T) {
	r, err := SimulatePipeline(PipelineConfig{Model: "resnet50", CPU: Skylake3, Net: OmniPath, Stages: 2})
	if err != nil || r.ImagesPerSec <= 0 {
		t.Fatalf("pipeline: %v %v", r.ImagesPerSec, err)
	}
	est, err := EstimateMemory("resnet50", 32)
	if err != nil || est.Total() <= 0 {
		t.Fatalf("memory: %v %v", est, err)
	}
	if _, _, err := CheckMemory(SimConfig{Model: "resnet50", CPU: Skylake3, PPN: 4, BatchPerProc: 32}); err != nil {
		t.Fatal(err)
	}
	n, err := NodesFor(SimConfig{Model: "resnet50", CPU: Skylake3, Net: OmniPath, PPN: 4, BatchPerProc: 32}, 500, 64)
	if err != nil || n < 2 {
		t.Fatalf("NodesFor: %d %v", n, err)
	}
}
